package analysis

// The ownership dataflow engine shared by poolown, releasecheck and
// selalias: a structured abstract interpreter over function bodies.
// Each tracked variable (the result of a producer call) carries a
// bitmask state {owned, released}; branches interpret on cloned
// environments and join afterwards, loops iterate the body to a
// fixpoint (the lattice is tiny, so this converges in a couple of
// rounds), and scope frames detect values that leak out of the block
// that acquired them.
//
// The engine is deliberately conservative in one direction only: it
// never reports a diagnostic for code it cannot prove wrong. Anything
// that makes a value's fate invisible — passing it to an unlisted
// function, storing it into a field, returning it, capturing it in a
// closure, sending it on a channel — transfers ownership out of the
// analysis and silences further reports for that variable. The
// annotation directives exist for the cases where a *listed* pattern
// is deliberately violated.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type consumeKind int

const (
	// consumeRelease returns the value to the pool: the value is dead and
	// any further use is a bug.
	consumeRelease consumeKind = iota
	// consumeDisown dissolves pool ownership but leaves the value usable
	// (it will be garbage collected normally).
	consumeDisown
)

// ownSpec parameterizes the engine for one analyzer.
type ownSpec struct {
	// directive suppresses diagnostics when //sommelier:<directive>
	// appears on or above the flagged line.
	directive string
	// noun names the tracked resource in messages ("pooled batch").
	noun string
	// producers maps funcKey → index of the tracked result.
	producers map[string]int
	// recvConsumed lists producers that also consume their receiver
	// (DetachSel, Materialize).
	recvConsumed map[string]bool
	// consumers maps funcKey → what the call does to its target (the
	// receiver for methods, the first argument for functions).
	consumers map[string]consumeKind
	// argConsumers maps funcKey → what the call does to its first
	// argument, for methods that borrow their receiver but take
	// ownership of the argument (StreamSink.Push: the sink lives on,
	// the pushed batch is the sink's to recycle).
	argConsumers map[string]consumeKind
	// borrows lists calls that read a tracked value without taking
	// ownership; unlisted calls transfer ownership out of the analysis.
	borrows map[string]bool
	// recvBorrows lists methods that borrow their receiver but take
	// ownership of their arguments (Relation.Append: the relation stays
	// owned, the appended batch is handed off).
	recvBorrows map[string]bool
	// derives lists methods whose result aliases the receiver's pooled
	// backing (Batch.Sel); using the result after the receiver is
	// released is flagged.
	derives map[string]bool
	// deriveFields lists field names whose reads alias pooled backing
	// (Cols).
	deriveFields map[string]bool
	// aliasOnly restricts reports to stale-alias diagnostics; leak,
	// discard, overwrite and double-release findings are left to the
	// analyzer that owns them (poolown reports the leak once, selalias
	// only the aliasing it adds on top).
	aliasOnly bool
	// skipTests excludes *_test.go files (tests may lean on the GC).
	skipTests bool
	// skipPkgs excludes whole packages (the pool implementation itself).
	skipPkgs map[string]bool
}

const (
	maskOwned uint8 = 1 << iota
	maskReleased
)

// varState is the abstract state of one tracked variable on the
// current path.
type varState struct {
	mask  uint8
	birth token.Pos // producer call position, where leaks are reported
	src   string    // producer short name for messages
	// owner, when non-nil, marks a derived alias (b.Sel()) of another
	// tracked variable rather than an owning variable itself.
	owner *types.Var
}

type env map[*types.Var]varState

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// join merges the state of two paths. A variable must be present on
// both paths to stay tracked ("absent wins"): once one path transfers
// ownership out of sight, no later report can be justified.
func (e env) join(o env) env {
	j := make(env)
	for v, a := range e {
		b, ok := o[v]
		if !ok {
			continue
		}
		if a.owner != nil || b.owner != nil {
			if a.owner == b.owner {
				j[v] = a
			}
			continue
		}
		m := a
		m.mask |= b.mask
		if b.birth < m.birth {
			m.birth, m.src = b.birth, b.src
		}
		j[v] = m
	}
	return j
}

func (e env) equal(o env) bool {
	if len(e) != len(o) {
		return false
	}
	for v, a := range e {
		b, ok := o[v]
		if !ok || a.mask != b.mask || a.owner != b.owner {
			return false
		}
	}
	return true
}

// ownAnalysis is the per-package run of one spec.
type ownAnalysis struct {
	pass *Pass
	spec *ownSpec
	seen map[token.Pos]map[string]bool // dedupe across fixpoint iterations
}

func (a *ownAnalysis) reportOnce(pos token.Pos, kind, format string, args ...any) {
	if a.spec.aliasOnly && kind != "stale" {
		return
	}
	if suppressedBy(a.pass, pos, a.spec.directive) {
		return
	}
	m := a.seen[pos]
	if m == nil {
		m = make(map[string]bool)
		a.seen[pos] = m
	}
	if m[kind] {
		return
	}
	m[kind] = true
	a.pass.Reportf(pos, format, args...)
}

// runOwnership applies a spec to every function body (including
// function literals, analyzed as independent units) in the package.
func runOwnership(pass *Pass, spec *ownSpec) error {
	if spec.skipPkgs[pass.Pkg.Path()] {
		return nil
	}
	a := &ownAnalysis{pass: pass, spec: spec, seen: make(map[token.Pos]map[string]bool)}
	for _, f := range pass.Files {
		if spec.skipTests {
			name := pass.Fset.File(f.Pos()).Name()
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.runFunc(fd.Type, fd.Body)
			// Function literals are opaque (captured tracked variables
			// escape) from the enclosing body's point of view, and are
			// analyzed here as separate units.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					a.runFunc(lit.Type, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// runFunc interprets one function body. Functions using goto are
// skipped wholesale: the structured interpreter cannot model them.
func (a *ownAnalysis) runFunc(ft *ast.FuncType, body *ast.BlockStmt) {
	usesGoto := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			usesGoto = true
		}
		return !usesGoto
	})
	if usesGoto {
		return
	}
	w := &walker{a: a, env: make(env), companions: map[*types.Var]*types.Var{}}
	if ft.Results != nil {
		for _, f := range ft.Results.List {
			for _, name := range f.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					w.namedResults = append(w.namedResults, v)
				}
			}
		}
	}
	w.walkBlock(body)
	if !w.terminated {
		w.leakCheckAll()
	}
}

// breakTarget is one enclosing breakable construct (loop, switch,
// select) collecting the environments of break/continue paths.
type breakTarget struct {
	label  string
	isLoop bool
	brks   []env
	conts  []env
}

type frame struct {
	scope *types.Scope
	vars  []*types.Var
}

// walker interprets one control-flow path.
type walker struct {
	a            *ownAnalysis
	env          env
	frames       []frame
	targets      []*breakTarget
	companions   map[*types.Var]*types.Var // error var → value var from `v, err := producer()`
	namedResults []*types.Var
	terminated   bool
}

func (w *walker) pass() *Pass    { return w.a.pass }
func (w *walker) spec() *ownSpec { return w.a.spec }
func (w *walker) info() *types.Info {
	return w.a.pass.TypesInfo
}

// branch clones the walker for one side of a control-flow split.
func (w *walker) branch() *walker {
	comp := make(map[*types.Var]*types.Var, len(w.companions))
	for k, v := range w.companions {
		comp[k] = v
	}
	return &walker{
		a:            w.a,
		env:          w.env.clone(),
		frames:       append([]frame(nil), w.frames...),
		targets:      w.targets,
		companions:   comp,
		namedResults: w.namedResults,
	}
}

// merge joins the fall-through environments of branch walkers into w.
// Terminated branches contribute nothing. If every path terminated, w
// terminates too.
func (w *walker) merge(base env, branches ...*walker) {
	var alive []env
	if base != nil {
		alive = append(alive, base)
	}
	for _, b := range branches {
		if b != nil && !b.terminated {
			alive = append(alive, b.env)
		}
	}
	if len(alive) == 0 {
		w.terminated = true
		return
	}
	j := alive[0]
	for _, e := range alive[1:] {
		j = j.join(e)
	}
	w.env = j
}

func (w *walker) pushFrame(n ast.Node) {
	w.frames = append(w.frames, frame{scope: w.info().Scopes[n]})
}

// popFrame leak-checks the variables declared in the ending scope: a
// value still owned when its declaring block exits can never be
// released.
func (w *walker) popFrame() {
	f := w.frames[len(w.frames)-1]
	w.frames = w.frames[:len(w.frames)-1]
	if !w.terminated {
		for _, v := range f.vars {
			w.leakCheck(v)
		}
	}
	for _, v := range f.vars {
		delete(w.env, v)
	}
}

func (w *walker) leakCheck(v *types.Var) {
	st, ok := w.env[v]
	if !ok || st.owner != nil || st.mask&maskOwned == 0 {
		return
	}
	w.a.reportOnce(st.birth, "leak",
		"%s %q from %s is not released on every path; release it or annotate //sommelier:%s",
		w.spec().noun, v.Name(), st.src, w.spec().directive)
}

func (w *walker) leakCheckAll() {
	for v := range w.env {
		w.leakCheck(v)
	}
}

// track registers a freshly produced value, filing it under the frame
// of its declaring scope so block exit finds it.
func (w *walker) track(v *types.Var, birth token.Pos, src string) {
	w.env[v] = varState{mask: maskOwned, birth: birth, src: src}
	scope := v.Parent()
	for i := len(w.frames) - 1; i >= 0; i-- {
		if w.frames[i].scope == scope || i == 0 {
			for _, have := range w.frames[i].vars {
				if have == v {
					return
				}
			}
			w.frames[i].vars = append(w.frames[i].vars, v)
			return
		}
	}
}

// ---- expression evaluation -------------------------------------------------

// use evaluates e for reads: it flags uses of released values and
// stale aliases, dispatches calls, and escapes values whose ownership
// the expression makes invisible (address-of, composite literals,
// closures).
func (w *walker) use(e ast.Expr) {
	switch x := ast.Unparen(e).(type) {
	case nil:
	case *ast.Ident:
		w.useIdent(x)
	case *ast.SelectorExpr:
		// A field read of a tracked value is a borrow of the root.
		if id := rootIdent(x); id != nil {
			w.useIdent(id)
		} else {
			w.use(x.X)
		}
	case *ast.IndexExpr:
		w.use(x.X)
		w.use(x.Index)
	case *ast.IndexListExpr:
		w.use(x.X)
		for _, i := range x.Indices {
			w.use(i)
		}
	case *ast.SliceExpr:
		w.use(x.X)
		w.use(x.Low)
		w.use(x.High)
		w.use(x.Max)
	case *ast.CallExpr:
		w.call(x)
	case *ast.StarExpr:
		w.use(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// Address taken: aliasing we cannot follow.
			w.use(x.X)
			w.escapeRoot(x.X)
		} else {
			w.use(x.X)
		}
	case *ast.BinaryExpr:
		w.use(x.X)
		w.use(x.Y)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			w.use(el)
			w.escapeAlias(el)
		}
	case *ast.KeyValueExpr:
		w.use(x.Key)
		w.use(x.Value)
	case *ast.TypeAssertExpr:
		w.use(x.X)
	case *ast.FuncLit:
		w.escapeCaptured(x)
	}
}

// useIdent flags reads of released values and stale derived aliases.
func (w *walker) useIdent(id *ast.Ident) {
	v := localVar(w.info(), id)
	if v == nil {
		return
	}
	st, ok := w.env[v]
	if !ok {
		return
	}
	if st.owner != nil {
		if ost, ok := w.env[st.owner]; ok && ost.mask&maskReleased != 0 {
			w.a.reportOnce(id.Pos(), "stale",
				"%q aliases pooled backing of %q, which may already be released here",
				id.Name, st.owner.Name())
		}
		return
	}
	if st.mask&maskReleased != 0 {
		w.a.reportOnce(id.Pos(), "uar",
			"use of %s %q after it may have been released", w.spec().noun, id.Name)
	}
}

// escapeRoot transfers the variable at the root of e out of the
// analysis: its fate is no longer visible, so no later diagnostic
// about it can be justified.
func (w *walker) escapeRoot(e ast.Expr) {
	id := rootIdent(e)
	if id == nil {
		return
	}
	if v := localVar(w.info(), id); v != nil {
		delete(w.env, v)
	}
}

// escapeAlias is escapeRoot restricted to expressions whose value can
// actually alias the tracked object: copying a value-typed field
// (res.Stats) or a basic value (b.Len()'s result is not even rooted)
// cannot be used to release or corrupt it, so the root stays tracked.
func (w *walker) escapeAlias(e ast.Expr) {
	if !pointerLike(w.info().TypeOf(e)) {
		return
	}
	w.escapeRoot(e)
}

// pointerLike reports whether values of t can carry a reference to
// pooled memory (pointers, interfaces, slices, maps, chans, funcs;
// structs and arrays recursively, e.g. copying a stats struct of
// durations aliases nothing, while copying a struct holding a
// *Relation does).
func pointerLike(t types.Type) bool {
	return pointerLikeDepth(t, 0)
}

func pointerLikeDepth(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return true // unknown or too deep: stay conservative
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map,
		*types.Chan, *types.Signature:
		return true
	case *types.Array:
		return pointerLikeDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerLikeDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return false
}

// escapeCaptured escapes every tracked variable a function literal
// captures.
func (w *walker) escapeCaptured(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := localVar(w.info(), id); v != nil {
				delete(w.env, v)
			}
		}
		return true
	})
}

// producerInfo resolves c as a producer call of this spec.
func (w *walker) producerInfo(c *ast.CallExpr) (resultIdx int, short string, recvConsumed, ok bool) {
	f := calleeFunc(w.info(), c)
	key := funcKey(f)
	idx, isP := w.spec().producers[key]
	if !isP {
		return 0, "", false, false
	}
	return idx, f.Name(), w.spec().recvConsumed[key], true
}

// call dispatches a call expression against the spec's tables.
func (w *walker) call(c *ast.CallExpr) {
	info := w.info()
	// Type conversions read their operand.
	if tv, ok := info.Types[c.Fun]; ok && tv.IsType() {
		for _, arg := range c.Args {
			w.use(arg)
		}
		return
	}
	// Builtins: len/cap borrow; everything else makes arguments escape.
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			for _, arg := range c.Args {
				w.use(arg)
				if id.Name != "len" && id.Name != "cap" {
					w.escapeAlias(arg)
				}
			}
			return
		}
	}
	f := calleeFunc(info, c)
	key := funcKey(f)
	spec := w.spec()

	if _, _, recvConsumed, ok := w.producerInfo(c); ok {
		// Producer in expression position: the fresh value is handed to
		// the surrounding expression immediately, so it is untracked.
		// Arguments move into the produced value (ViewWithSel wraps the
		// base batch it is given), so they escape the analysis too.
		for _, arg := range c.Args {
			w.use(arg)
			w.escapeAlias(arg)
		}
		if recvConsumed {
			w.consumeTarget(c, consumeRelease)
		} else if recv := w.receiver(c); recv != nil {
			w.use(recv)
		}
		return
	}
	if kind, ok := spec.consumers[key]; ok {
		target := w.receiver(c)
		args := c.Args
		if target == nil && len(args) > 0 {
			target = args[0]
			args = args[1:]
		}
		for _, arg := range args {
			w.use(arg)
		}
		if target != nil {
			// No use() here: consuming a released value reports "double",
			// which subsumes the use-after-release a use would add.
			w.consume(target, c, kind)
		}
		return
	}
	if kind, ok := spec.argConsumers[key]; ok {
		if recv := w.receiver(c); recv != nil {
			w.use(recv)
		}
		if len(c.Args) > 0 {
			w.consume(c.Args[0], c, kind)
		}
		for _, arg := range c.Args[1:] {
			w.use(arg)
		}
		return
	}
	if spec.borrows[key] || spec.derives[key] {
		if recv := w.receiver(c); recv != nil {
			w.use(recv)
		}
		for _, arg := range c.Args {
			w.use(arg)
		}
		return
	}
	if spec.recvBorrows[key] {
		if recv := w.receiver(c); recv != nil {
			w.use(recv)
		}
		for _, arg := range c.Args {
			w.use(arg)
			w.escapeAlias(arg)
		}
		return
	}
	// Unknown call: ownership of any tracked argument (and receiver)
	// transfers out of the analysis.
	if recv := w.receiver(c); recv != nil {
		w.use(recv)
		w.escapeRoot(recv)
	} else {
		w.use(c.Fun)
	}
	for _, arg := range c.Args {
		w.use(arg)
		w.escapeAlias(arg)
	}
}

// consumeTarget consumes the receiver of c (DetachSel/Materialize).
func (w *walker) consumeTarget(c *ast.CallExpr, kind consumeKind) {
	if recv := w.receiver(c); recv != nil {
		w.consume(recv, c, kind)
	}
}

// consume applies a consumer call to the variable rooting target.
func (w *walker) consume(target ast.Expr, c *ast.CallExpr, kind consumeKind) {
	id := rootIdent(target)
	if id == nil {
		return
	}
	v := localVar(w.info(), id)
	if v == nil {
		return
	}
	st, ok := w.env[v]
	if !ok || st.owner != nil {
		return
	}
	if st.mask&maskReleased != 0 {
		w.a.reportOnce(c.Pos(), "double",
			"%s %q may already be released here (double release)", w.spec().noun, id.Name)
	}
	switch kind {
	case consumeRelease:
		st.mask = maskReleased
		w.env[v] = st
	case consumeDisown:
		// The value stays usable; pool ownership is dissolved.
		delete(w.env, v)
	}
}

// receiver returns the receiver expression of a method call, nil for
// package-function calls (including package-qualified ones, where
// sel.X is the package name, not a value).
func (w *walker) receiver(c *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if _, isPkg := w.info().Uses[id].(*types.PkgName); isPkg {
			return nil
		}
	}
	return sel.X
}
