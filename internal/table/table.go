package table

import (
	"fmt"
	"sort"
	"sync"

	"sommelier/internal/storage"
)

// Class is the partial-loading class of a table.
type Class uint8

// Table classes: given metadata is eagerly loaded and small; derived
// metadata is a partially materialized view; actual data is chunked and
// lazily loaded.
const (
	GivenMetadata Class = iota
	DerivedMetadata
	ActualData
)

// String names the class.
func (c Class) String() string {
	switch c {
	case GivenMetadata:
		return "GMd"
	case DerivedMetadata:
		return "DMd"
	case ActualData:
		return "AD"
	default:
		return "?"
	}
}

// IsMetadata reports whether the class is given or derived metadata —
// the "red" vertices of the paper's colored query graph.
func (c Class) IsMetadata() bool { return c == GivenMetadata || c == DerivedMetadata }

// Table is a named, classed relation. Metadata tables hold one resident
// relation; actual-data tables hold one relation per ingested chunk,
// keyed by chunk ID, so chunks can be ingested, processed in parallel
// and evicted independently (the paper's "separate table per file").
//
// Tables are safe for concurrent use. Chunks of actual-data tables are
// reference counted: an executor pins every chunk it will scan, and an
// eviction (DropChunk) of a pinned chunk is deferred until the last pin
// is released, so one query's cache admission can never yank a chunk
// another in-flight query is still reading.
type Table struct {
	Name       string
	Class      Class
	Schema     Schema
	PrimaryKey []string
	// ChunkKey names the column of an actual-data table that carries
	// the owning chunk's ID (e.g. "file_id" in D). Empty for
	// metadata tables.
	ChunkKey string

	mu     sync.RWMutex
	data   *storage.Relation
	pkSeen map[string]bool
	chunks map[int64]*storage.Relation
	// pins counts in-flight queries holding each chunk; doomed marks
	// chunks whose drop was requested while pinned and is deferred to
	// the release of the last pin.
	pins   map[int64]int
	doomed map[int64]bool
}

// New creates an empty table. For ActualData tables chunkKey must name
// a schema column.
func New(name string, class Class, schema Schema, primaryKey []string, chunkKey string) (*Table, error) {
	for _, pk := range primaryKey {
		if schema.IndexOf(pk) < 0 {
			return nil, fmt.Errorf("table %s: primary key column %q not in schema", name, pk)
		}
	}
	if class == ActualData {
		if chunkKey == "" || schema.IndexOf(chunkKey) < 0 {
			return nil, fmt.Errorf("table %s: actual-data table needs a chunk key column, got %q", name, chunkKey)
		}
	} else if chunkKey != "" {
		return nil, fmt.Errorf("table %s: chunk key on non actual-data table", name)
	}
	t := &Table{
		Name:       name,
		Class:      class,
		Schema:     schema,
		PrimaryKey: primaryKey,
		ChunkKey:   chunkKey,
		data:       storage.NewRelation(),
		chunks:     make(map[int64]*storage.Relation),
		pins:       make(map[int64]int),
		doomed:     make(map[int64]bool),
	}
	if len(primaryKey) > 0 && class != ActualData {
		t.pkSeen = make(map[string]bool)
	}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(name string, class Class, schema Schema, primaryKey []string, chunkKey string) *Table {
	t, err := New(name, class, schema, primaryKey, chunkKey)
	if err != nil {
		panic(err)
	}
	return t
}

// Append adds a batch to a metadata table, enforcing primary-key
// uniqueness (the paper defines PKs under every loading variant).
// The resident relation is replaced copy-on-write, so relations handed
// out by Data() are immutable snapshots that concurrent scans can read
// without synchronization while the table keeps growing (e.g. derived
// metadata materialized by another query's Algorithm 1 run).
func (t *Table) Append(b *storage.Batch) error {
	if t.Class == ActualData {
		return fmt.Errorf("table %s: use AppendChunk for actual-data tables", t.Name)
	}
	if b.Width() != t.Schema.Width() {
		return fmt.Errorf("table %s: batch width %d, schema width %d", t.Name, b.Width(), t.Schema.Width())
	}
	for i, c := range b.Cols {
		if c.Kind() != t.Schema.Cols[i].Kind {
			return fmt.Errorf("table %s: column %d kind %v, want %v", t.Name, i, c.Kind(), t.Schema.Cols[i].Kind)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pkSeen != nil {
		pkIdx := make([]int, len(t.PrimaryKey))
		for i, pk := range t.PrimaryKey {
			pkIdx[i] = t.Schema.IndexOf(pk)
		}
		n := b.Len()
		for r := 0; r < n; r++ {
			key := ""
			for _, ci := range pkIdx {
				key += fmt.Sprintf("%v|", storage.ValueAt(b.Cols[ci], r))
			}
			if t.pkSeen[key] {
				return fmt.Errorf("table %s: primary key violation: %s", t.Name, key)
			}
			t.pkSeen[key] = true
		}
	}
	// Copy-on-write: the new snapshot shares the parent's batches and
	// inherits its cached zone maps, so a later range scan computes
	// bounds only for the appended tail.
	nd := t.data.CloneForAppend(1)
	nd.Append(b)
	t.data = nd
	return nil
}

// Data returns the resident relation of a metadata table: an immutable
// snapshot that later Appends will not mutate.
func (t *Table) Data() *storage.Relation {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.data
}

// Rows reports the number of resident rows (all chunks for AD tables).
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.Class == ActualData {
		n := 0
		for _, r := range t.chunks {
			n += r.Rows()
		}
		return n
	}
	return t.data.Rows()
}

// MemSize estimates resident bytes.
func (t *Table) MemSize() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.Class == ActualData {
		var n int64
		for _, r := range t.chunks {
			n += r.MemSize()
		}
		return n
	}
	return t.data.MemSize()
}

// AppendChunk installs (or replaces) the relation of one chunk of an
// actual-data table. Installing a fresh relation clears any deferred
// drop: the new data starts a new lifetime.
func (t *Table) AppendChunk(chunkID int64, rel *storage.Relation) error {
	if t.Class != ActualData {
		return fmt.Errorf("table %s: AppendChunk on %v table", t.Name, t.Class)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.chunks[chunkID] = rel
	delete(t.doomed, chunkID)
	return nil
}

// Pin takes a reference on a resident chunk, reporting false when the
// chunk is not resident. While pinned, the chunk survives DropChunk:
// the drop is deferred until the last pin is released. Pin succeeding
// is the authoritative residency test under concurrency — a recycler
// Contains check can go stale between the check and the scan, a pin
// cannot.
func (t *Table) Pin(chunkID int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.chunks[chunkID]; !ok {
		return false
	}
	t.pins[chunkID]++
	return true
}

// Unpin releases one reference taken by Pin. If the chunk was doomed by
// a DropChunk while pinned and this was the last pin, the data is
// dropped now.
func (t *Table) Unpin(chunkID int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.pins[chunkID]
	if n <= 1 {
		delete(t.pins, chunkID)
		if t.doomed[chunkID] {
			delete(t.doomed, chunkID)
			delete(t.chunks, chunkID)
		}
		return
	}
	t.pins[chunkID] = n - 1
}

// Pinned reports the current pin count of a chunk (for tests and
// introspection).
func (t *Table) Pinned(chunkID int64) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pins[chunkID]
}

// Chunk returns the relation of one chunk and whether it is resident.
func (t *Table) Chunk(chunkID int64) (*storage.Relation, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.chunks[chunkID]
	return r, ok
}

// DropChunk evicts one chunk's data, returning the bytes freed (or
// scheduled to be freed). When the chunk is pinned by in-flight
// queries, the drop is deferred: the chunk is marked doomed and the
// data released when the last pin goes away, so eviction can never
// corrupt a concurrent scan.
func (t *Table) DropChunk(chunkID int64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.chunks[chunkID]
	if !ok {
		return 0
	}
	if t.pins[chunkID] > 0 {
		t.doomed[chunkID] = true
		return r.MemSize()
	}
	delete(t.chunks, chunkID)
	delete(t.doomed, chunkID)
	return r.MemSize()
}

// ChunkIDs returns the resident chunk IDs in ascending order.
func (t *Table) ChunkIDs() []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make([]int64, 0, len(t.chunks))
	for id := range t.chunks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AllChunks returns every resident chunk relation in chunk-ID order.
func (t *Table) AllChunks() []*storage.Relation {
	ids := t.ChunkIDs()
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*storage.Relation, len(ids))
	for i, id := range ids {
		out[i] = t.chunks[id]
	}
	return out
}

// Truncate discards all resident data (used by the loaders between
// experiments).
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.data = storage.NewRelation()
	t.chunks = make(map[int64]*storage.Relation)
	t.pins = make(map[int64]int)
	t.doomed = make(map[int64]bool)
	if t.pkSeen != nil {
		t.pkSeen = make(map[string]bool)
	}
}
