// Package table defines schemas, tables and the catalog. Tables carry a
// class — given metadata (GMd), derived metadata (DMd) or actual data
// (AD) — because the partial-loading paradigm treats the classes
// differently: metadata is loaded eagerly and always resident, actual
// data lives in per-chunk column sets that are ingested lazily.
package table

import (
	"fmt"

	"sommelier/internal/storage"
)

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Kind storage.Kind
}

// Schema is an ordered list of column definitions.
type Schema struct {
	Cols []ColumnDef
}

// NewSchema builds a schema from definitions, rejecting duplicates.
func NewSchema(cols ...ColumnDef) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("table: empty column name")
		}
		if seen[c.Name] {
			return Schema{}, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return Schema{Cols: cols}, nil
}

// MustSchema is NewSchema that panics on error; for statically known
// schemas.
func MustSchema(cols ...ColumnDef) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Width reports the number of columns.
func (s Schema) Width() int { return len(s.Cols) }

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// QualifiedNames returns the column names prefixed with qual and a dot.
func (s Schema) QualifiedNames(qual string) []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = qual + "." + c.Name
	}
	return out
}

// Kinds returns the column kinds in order.
func (s Schema) Kinds() []storage.Kind {
	out := make([]storage.Kind, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Kind
	}
	return out
}

// IndexOf returns the position of the named column, or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// KindOf returns the kind of the named column; KindInvalid if absent.
func (s Schema) KindOf(name string) storage.Kind {
	if i := s.IndexOf(name); i >= 0 {
		return s.Cols[i].Kind
	}
	return storage.KindInvalid
}
