package table

import (
	"testing"

	"sommelier/internal/storage"
)

// TestAppendInheritsZoneMaps pins the copy-on-write zone-map protocol
// of metadata tables: each Append produces a fresh snapshot that
// inherits the previous snapshot's cached per-batch bounds, so a range
// scan after an append computes bounds only for the appended tail
// batch — not for the whole table again.
func TestAppendInheritsZoneMaps(t *testing.T) {
	schema := MustSchema(
		ColumnDef{"window_start", storage.KindTime},
		ColumnDef{"window_max", storage.KindFloat64},
	)
	tb := MustNew("H", DerivedMetadata, schema, nil, "")
	mk := func(lo int64) *storage.Batch {
		return storage.NewBatch(
			storage.NewTimeColumn([]int64{lo, lo + 5}),
			storage.NewFloat64Column([]float64{1, 2}),
		)
	}
	for i := int64(0); i < 4; i++ {
		if err := tb.Append(mk(i * 100)); err != nil {
			t.Fatal(err)
		}
	}
	// First range-predicated scan of the snapshot: all 4 batch bounds
	// are computed and cached.
	base := storage.ZoneComputations()
	snap := tb.Data()
	for i := 0; i < 4; i++ {
		snap.Zone(i, 0)
	}
	if got := storage.ZoneComputations() - base; got != 4 {
		t.Fatalf("first scan computed %d batch bounds, want 4", got)
	}

	// Append one window: the new snapshot inherits the cached bounds and
	// scans only the tail batch.
	if err := tb.Append(mk(1000)); err != nil {
		t.Fatal(err)
	}
	base = storage.ZoneComputations()
	next := tb.Data()
	for i := 0; i < 5; i++ {
		if z := next.Zone(i, 0); !z.Ok {
			t.Fatalf("batch %d has no bound", i)
		}
	}
	if got := storage.ZoneComputations() - base; got != 1 {
		t.Fatalf("post-append scan computed %d batch bounds, want 1 (tail only)", got)
	}
	if z := next.Zone(4, 0); z.Min != 1000 || z.Max != 1005 {
		t.Fatalf("tail bound = %+v, want [1000,1005]", z)
	}
}
