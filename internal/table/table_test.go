package table

import (
	"strings"
	"testing"

	"sommelier/internal/storage"
)

func fileSchema() Schema {
	return MustSchema(
		ColumnDef{"file_id", storage.KindInt64},
		ColumnDef{"uri", storage.KindString},
		ColumnDef{"station", storage.KindString},
		ColumnDef{"channel", storage.KindString},
	)
}

func dataSchema() Schema {
	return MustSchema(
		ColumnDef{"file_id", storage.KindInt64},
		ColumnDef{"sample_time", storage.KindTime},
		ColumnDef{"sample_value", storage.KindFloat64},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := fileSchema()
	if s.Width() != 4 {
		t.Fatalf("width = %d", s.Width())
	}
	if s.IndexOf("station") != 2 || s.IndexOf("missing") != -1 {
		t.Fatal("IndexOf wrong")
	}
	if s.KindOf("uri") != storage.KindString || s.KindOf("nope") != storage.KindInvalid {
		t.Fatal("KindOf wrong")
	}
	q := s.QualifiedNames("F")
	if q[0] != "F.file_id" || q[3] != "F.channel" {
		t.Fatalf("qualified = %v", q)
	}
	if _, err := NewSchema(ColumnDef{"a", storage.KindInt64}, ColumnDef{"a", storage.KindInt64}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewSchema(ColumnDef{"", storage.KindInt64}); err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := New("F", GivenMetadata, fileSchema(), []string{"nope"}, ""); err == nil {
		t.Fatal("bad PK accepted")
	}
	if _, err := New("D", ActualData, dataSchema(), nil, ""); err == nil {
		t.Fatal("AD table without chunk key accepted")
	}
	if _, err := New("D", ActualData, dataSchema(), nil, "absent"); err == nil {
		t.Fatal("AD table with unknown chunk key accepted")
	}
	if _, err := New("F", GivenMetadata, fileSchema(), nil, "file_id"); err == nil {
		t.Fatal("chunk key on metadata table accepted")
	}
}

func mdBatch(ids []int64, uris, stations, channels []string) *storage.Batch {
	return storage.NewBatch(
		storage.NewInt64Column(ids),
		storage.NewStringColumn(uris),
		storage.NewStringColumn(stations),
		storage.NewStringColumn(channels),
	)
}

func TestAppendAndPKEnforcement(t *testing.T) {
	f := MustNew("F", GivenMetadata, fileSchema(), []string{"file_id"}, "")
	if err := f.Append(mdBatch([]int64{1, 2}, []string{"a", "b"}, []string{"ISK", "ISK"}, []string{"BHE", "BHN"})); err != nil {
		t.Fatal(err)
	}
	if f.Rows() != 2 {
		t.Fatalf("rows = %d", f.Rows())
	}
	err := f.Append(mdBatch([]int64{2}, []string{"c"}, []string{"X"}, []string{"Y"}))
	if err == nil || !strings.Contains(err.Error(), "primary key violation") {
		t.Fatalf("dup PK error = %v", err)
	}
	// Width mismatch.
	if err := f.Append(storage.NewBatch(storage.NewInt64Column([]int64{9}))); err == nil {
		t.Fatal("width mismatch accepted")
	}
	// Kind mismatch.
	bad := storage.NewBatch(
		storage.NewFloat64Column([]float64{1}),
		storage.NewStringColumn([]string{"u"}),
		storage.NewStringColumn([]string{"s"}),
		storage.NewStringColumn([]string{"c"}),
	)
	if err := f.Append(bad); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestChunkLifecycle(t *testing.T) {
	d := MustNew("D", ActualData, dataSchema(), nil, "file_id")
	if err := d.Append(&storage.Batch{}); err == nil {
		t.Fatal("Append on AD table should fail")
	}
	mk := func(fid int64, n int) *storage.Relation {
		r := storage.NewRelation()
		ids := make([]int64, n)
		ts := make([]int64, n)
		vs := make([]float64, n)
		for i := range ids {
			ids[i] = fid
			ts[i] = int64(i)
			vs[i] = float64(i)
		}
		r.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewTimeColumn(ts), storage.NewFloat64Column(vs)))
		return r
	}
	if err := d.AppendChunk(7, mk(7, 10)); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendChunk(3, mk(3, 5)); err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 15 {
		t.Fatalf("rows = %d", d.Rows())
	}
	if ids := d.ChunkIDs(); len(ids) != 2 || ids[0] != 3 || ids[1] != 7 {
		t.Fatalf("chunk ids = %v", ids)
	}
	if _, ok := d.Chunk(3); !ok {
		t.Fatal("chunk 3 missing")
	}
	if _, ok := d.Chunk(99); ok {
		t.Fatal("phantom chunk")
	}
	if len(d.AllChunks()) != 2 {
		t.Fatal("AllChunks wrong")
	}
	freed := d.DropChunk(3)
	if freed <= 0 {
		t.Fatalf("freed = %d", freed)
	}
	if d.DropChunk(3) != 0 {
		t.Fatal("double drop freed bytes")
	}
	if d.Rows() != 10 {
		t.Fatalf("rows after drop = %d", d.Rows())
	}
	if d.MemSize() <= 0 {
		t.Fatal("memsize should be positive")
	}
	d.Truncate()
	if d.Rows() != 0 {
		t.Fatal("truncate left rows")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	f := MustNew("F", GivenMetadata, fileSchema(), []string{"file_id"}, "")
	d := MustNew("D", ActualData, dataSchema(), nil, "file_id")
	if err := c.AddTable(f); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(d); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(f); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if got, ok := c.Table("F"); !ok || got != f {
		t.Fatal("lookup failed")
	}
	if _, ok := c.Table("Z"); ok {
		t.Fatal("phantom table")
	}
	if n := len(c.Tables()); n != 2 {
		t.Fatalf("tables = %d", n)
	}
	v := &View{Name: "dataview", Tables: []string{"F", "D"}, Joins: []JoinPred{{"F.file_id", "D.file_id"}}}
	if err := c.AddView(v); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView(v); err == nil {
		t.Fatal("duplicate view accepted")
	}
	if err := c.AddView(&View{Name: "bad1", Tables: []string{"Z"}}); err == nil {
		t.Fatal("view over unknown table accepted")
	}
	if err := c.AddView(&View{Name: "bad2", Tables: []string{"F"}, Joins: []JoinPred{{"F.nope", "D.file_id"}}}); err == nil {
		t.Fatal("view with unknown join column accepted")
	}
	if err := c.AddView(&View{Name: "bad3", Tables: []string{"F"}, Joins: []JoinPred{{"unqualified", "D.file_id"}}}); err == nil {
		t.Fatal("view with unqualified join column accepted")
	}
	if err := c.AddView(&View{Name: "F", Tables: []string{"F"}}); err == nil {
		t.Fatal("view colliding with table accepted")
	}
	if got, ok := c.View("dataview"); !ok || got.Name != "dataview" {
		t.Fatal("view lookup failed")
	}
}

func TestForeignKeys(t *testing.T) {
	c := NewCatalog()
	f := MustNew("F", GivenMetadata, fileSchema(), []string{"file_id"}, "")
	d := MustNew("D", ActualData, dataSchema(), nil, "file_id")
	if err := c.AddTable(f); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(d); err != nil {
		t.Fatal(err)
	}
	fk := ForeignKey{Table: "D", Column: "file_id", RefTable: "F", RefColumn: "file_id"}
	if err := c.AddForeignKey(fk); err != nil {
		t.Fatal(err)
	}
	if got := c.ForeignKeys(); len(got) != 1 || got[0] != fk {
		t.Fatalf("fks = %v", got)
	}
	bad := []ForeignKey{
		{Table: "Z", Column: "x", RefTable: "F", RefColumn: "file_id"},
		{Table: "D", Column: "nope", RefTable: "F", RefColumn: "file_id"},
		{Table: "D", Column: "file_id", RefTable: "Z", RefColumn: "x"},
		{Table: "D", Column: "file_id", RefTable: "F", RefColumn: "nope"},
	}
	for i, fk := range bad {
		if err := c.AddForeignKey(fk); err == nil {
			t.Errorf("bad FK %d accepted", i)
		}
	}
}

func TestSplitQualified(t *testing.T) {
	tab, col, err := SplitQualified("F.station")
	if err != nil || tab != "F" || col != "station" {
		t.Fatalf("split = %q %q %v", tab, col, err)
	}
	for _, bad := range []string{"noqual", ".x", "x.", ""} {
		if _, _, err := SplitQualified(bad); err == nil {
			t.Errorf("SplitQualified(%q) should fail", bad)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !GivenMetadata.IsMetadata() || !DerivedMetadata.IsMetadata() || ActualData.IsMetadata() {
		t.Fatal("IsMetadata wrong")
	}
	if GivenMetadata.String() != "GMd" || DerivedMetadata.String() != "DMd" || ActualData.String() != "AD" {
		t.Fatal("class names wrong")
	}
}

func TestPinDefersDrop(t *testing.T) {
	d := MustNew("D", ActualData, dataSchema(), nil, "file_id")
	mk := func(fid int64, n int) *storage.Relation {
		r := storage.NewRelation()
		ids := make([]int64, n)
		ts := make([]int64, n)
		vs := make([]float64, n)
		for i := range ids {
			ids[i] = fid
			ts[i] = int64(i)
			vs[i] = float64(i)
		}
		r.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewTimeColumn(ts), storage.NewFloat64Column(vs)))
		return r
	}
	if d.Pin(5) {
		t.Fatal("pinned a non-resident chunk")
	}
	if err := d.AppendChunk(5, mk(5, 4)); err != nil {
		t.Fatal(err)
	}
	if !d.Pin(5) || !d.Pin(5) {
		t.Fatal("pin of resident chunk failed")
	}
	if d.Pinned(5) != 2 {
		t.Fatalf("pin count = %d", d.Pinned(5))
	}
	// Dropping a pinned chunk defers: data stays readable.
	if freed := d.DropChunk(5); freed <= 0 {
		t.Fatalf("deferred drop reported %d bytes", freed)
	}
	if _, ok := d.Chunk(5); !ok {
		t.Fatal("doomed chunk vanished while pinned")
	}
	d.Unpin(5)
	if _, ok := d.Chunk(5); !ok {
		t.Fatal("doomed chunk vanished before last unpin")
	}
	d.Unpin(5)
	if _, ok := d.Chunk(5); ok {
		t.Fatal("doomed chunk survived last unpin")
	}
	if d.Pinned(5) != 0 {
		t.Fatalf("pin count after release = %d", d.Pinned(5))
	}
	// Unpinned drop stays immediate; re-append restarts the lifetime.
	if err := d.AppendChunk(5, mk(5, 4)); err != nil {
		t.Fatal(err)
	}
	if d.DropChunk(5) <= 0 {
		t.Fatal("unpinned drop freed nothing")
	}
	if _, ok := d.Chunk(5); ok {
		t.Fatal("unpinned drop deferred")
	}
}

func TestAppendCopyOnWrite(t *testing.T) {
	f := MustNew("F", GivenMetadata, fileSchema(), nil, "")
	one := func(id float64) *storage.Batch {
		return storage.NewBatch(
			storage.NewInt64Column([]int64{int64(id)}),
			storage.NewStringColumn([]string{"u"}),
			storage.NewStringColumn([]string{"s"}),
			storage.NewStringColumn([]string{"c"}),
		)
	}
	if err := f.Append(one(1)); err != nil {
		t.Fatal(err)
	}
	snap := f.Data()
	if err := f.Append(one(2)); err != nil {
		t.Fatal(err)
	}
	if snap.Rows() != 1 {
		t.Fatalf("snapshot grew to %d rows after a later Append", snap.Rows())
	}
	if f.Data().Rows() != 2 {
		t.Fatalf("table rows = %d", f.Data().Rows())
	}
}
