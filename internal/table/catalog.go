package table

import (
	"fmt"
	"sort"
	"sync"
)

// JoinPred is an equality join predicate between two table columns,
// written as qualified names ("F.file_id" = "S.file_id").
type JoinPred struct {
	Left, Right string
}

// View is a named (non-materialized) join of base tables — the paper's
// dataview and windowdataview "universal tables". Queries are written
// against views; the planner expands them into join plans.
type View struct {
	Name   string
	Tables []string
	Joins  []JoinPred
}

// ForeignKey declares that every value of Table.Column references
// RefTable.RefColumn. Under eager_index loading these become join
// indexes; under lazy loading they are omitted (system-generated keys
// are correct by construction, as the paper argues).
type ForeignKey struct {
	Table, Column       string
	RefTable, RefColumn string
}

// RangeMapping declares that the values of an actual-data column are
// bounded per chunk by two metadata columns (all qualified names): a
// sample's timestamp lies within its segment's [Lo, Hi) interval. The
// planner uses mappings to infer metadata predicates from actual-data
// range predicates, so the metadata branch Qf prunes chunks by time —
// the reason the paper's 2-day query loads only 2 files.
type RangeMapping struct {
	ADColumn string // e.g. "D.sample_time"
	MdLo     string // e.g. "S.start_time"
	MdHi     string // e.g. "S.end_time"
}

// Catalog is the schema registry: tables, views and foreign keys.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	views    map[string]*View
	fks      []ForeignKey
	mappings []RangeMapping
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
}

// AddTable registers a table; names must be unique across tables and
// views.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	if _, dup := c.views[t.Name]; dup {
		return fmt.Errorf("catalog: table %q collides with a view", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddView registers a view after validating that its tables and join
// columns exist.
func (c *Catalog) AddView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.views[v.Name]; dup {
		return fmt.Errorf("catalog: duplicate view %q", v.Name)
	}
	if _, dup := c.tables[v.Name]; dup {
		return fmt.Errorf("catalog: view %q collides with a table", v.Name)
	}
	for _, tn := range v.Tables {
		if _, ok := c.tables[tn]; !ok {
			return fmt.Errorf("catalog: view %q references unknown table %q", v.Name, tn)
		}
	}
	for _, j := range v.Joins {
		for _, side := range []string{j.Left, j.Right} {
			tab, col, err := SplitQualified(side)
			if err != nil {
				return fmt.Errorf("catalog: view %q: %v", v.Name, err)
			}
			t, ok := c.tables[tab]
			if !ok {
				return fmt.Errorf("catalog: view %q joins unknown table %q", v.Name, tab)
			}
			if t.Schema.IndexOf(col) < 0 {
				return fmt.Errorf("catalog: view %q joins unknown column %q", v.Name, side)
			}
		}
	}
	c.views[v.Name] = v
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[name]
	return v, ok
}

// AddForeignKey registers a foreign-key declaration.
func (c *Catalog) AddForeignKey(fk ForeignKey) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[fk.Table]
	if !ok {
		return fmt.Errorf("catalog: FK on unknown table %q", fk.Table)
	}
	if t.Schema.IndexOf(fk.Column) < 0 {
		return fmt.Errorf("catalog: FK on unknown column %s.%s", fk.Table, fk.Column)
	}
	rt, ok := c.tables[fk.RefTable]
	if !ok {
		return fmt.Errorf("catalog: FK references unknown table %q", fk.RefTable)
	}
	if rt.Schema.IndexOf(fk.RefColumn) < 0 {
		return fmt.Errorf("catalog: FK references unknown column %s.%s", fk.RefTable, fk.RefColumn)
	}
	c.fks = append(c.fks, fk)
	return nil
}

// ForeignKeys returns the declared foreign keys.
func (c *Catalog) ForeignKeys() []ForeignKey {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]ForeignKey(nil), c.fks...)
}

// AddRangeMapping registers a chunk-bounding declaration after
// validating all three columns.
func (c *Catalog) AddRangeMapping(m RangeMapping) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, q := range []string{m.ADColumn, m.MdLo, m.MdHi} {
		tab, col, err := SplitQualified(q)
		if err != nil {
			return err
		}
		t, ok := c.tables[tab]
		if !ok {
			return fmt.Errorf("catalog: range mapping references unknown table %q", tab)
		}
		if t.Schema.IndexOf(col) < 0 {
			return fmt.Errorf("catalog: range mapping references unknown column %q", q)
		}
	}
	c.mappings = append(c.mappings, m)
	return nil
}

// RangeMappings returns the registered chunk-bounding declarations.
func (c *Catalog) RangeMappings() []RangeMapping {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]RangeMapping(nil), c.mappings...)
}

// SplitQualified splits "T.col" into table and column.
func SplitQualified(name string) (tab, col string, err error) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			if i == 0 || i == len(name)-1 {
				return "", "", fmt.Errorf("malformed qualified name %q", name)
			}
			return name[:i], name[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("name %q is not qualified", name)
}
