// Package stalta implements the classic short-term-average over
// long-term-average event detector — the seismological analysis the
// paper's §II-C motivates ("finding extreme values over Short Term
// Averaging, typically over an interval of 2 seconds, and Long Term
// Averaging, typically over an interval of 15 seconds"). It operates on
// the (time, value) series that dataview queries return.
package stalta

import (
	"fmt"
	"math"
)

// Ratio computes the STA/LTA ratio series over the absolute amplitude
// of values, using trailing windows of sta and lta samples
// (sta < lta). The first lta-1 positions carry no full long-term
// window and are reported as zero.
func Ratio(values []float64, sta, lta int) ([]float64, error) {
	if sta <= 0 || lta <= sta {
		return nil, fmt.Errorf("stalta: need 0 < sta < lta, got %d, %d", sta, lta)
	}
	out := make([]float64, len(values))
	if len(values) < lta {
		return out, nil
	}
	var staSum, ltaSum float64
	abs := func(v float64) float64 { return math.Abs(v) }
	for i, v := range values {
		ltaSum += abs(v)
		if i >= lta {
			ltaSum -= abs(values[i-lta])
		}
		staSum += abs(v)
		if i >= sta {
			staSum -= abs(values[i-sta])
		}
		if i >= lta-1 {
			den := ltaSum / float64(lta)
			if den == 0 {
				out[i] = 0
				continue
			}
			out[i] = (staSum / float64(sta)) / den
		}
	}
	return out, nil
}

// Event is one detected trigger interval.
type Event struct {
	// Start and End index the triggering span [Start, End) in the
	// input series.
	Start, End int
	// Peak indexes the maximum ratio within the span.
	Peak int
	// MaxRatio is the ratio at Peak.
	MaxRatio float64
}

// Detect runs the standard trigger/detrigger scheme over the STA/LTA
// ratio: an event opens when the ratio exceeds trigger and closes when
// it falls below detrigger (detrigger < trigger).
func Detect(values []float64, sta, lta int, trigger, detrigger float64) ([]Event, error) {
	if detrigger >= trigger {
		return nil, fmt.Errorf("stalta: detrigger %v must be below trigger %v", detrigger, trigger)
	}
	ratio, err := Ratio(values, sta, lta)
	if err != nil {
		return nil, err
	}
	var events []Event
	open := false
	var cur Event
	for i, r := range ratio {
		switch {
		case !open && r >= trigger:
			open = true
			cur = Event{Start: i, Peak: i, MaxRatio: r}
		case open && r > cur.MaxRatio:
			cur.Peak, cur.MaxRatio = i, r
		}
		if open && r < detrigger {
			cur.End = i
			events = append(events, cur)
			open = false
		}
	}
	if open {
		cur.End = len(ratio)
		events = append(events, cur)
	}
	return events, nil
}
