package stalta

import (
	"math"
	"testing"
)

func TestRatioValidation(t *testing.T) {
	if _, err := Ratio(nil, 0, 10); err == nil {
		t.Fatal("sta=0 accepted")
	}
	if _, err := Ratio(nil, 10, 10); err == nil {
		t.Fatal("lta=sta accepted")
	}
}

func TestRatioFlatSignal(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 5
	}
	r, err := Ratio(vals, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if r[i] != 0 {
			t.Fatalf("warm-up position %d = %v", i, r[i])
		}
	}
	for i := 16; i < 100; i++ {
		if math.Abs(r[i]-1) > 1e-12 {
			t.Fatalf("flat ratio at %d = %v", i, r[i])
		}
	}
}

func TestRatioShortSeries(t *testing.T) {
	r, err := Ratio([]float64{1, 2}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r {
		if v != 0 {
			t.Fatal("short series should yield zeros")
		}
	}
}

func TestRatioZeroQuietPeriod(t *testing.T) {
	vals := make([]float64, 40) // all zero: denominator 0
	r, err := Ratio(vals, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r {
		if v != 0 || math.IsNaN(v) {
			if math.IsNaN(v) {
				t.Fatal("NaN on silent signal")
			}
		}
	}
}

func burstSignal() []float64 {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 1 // quiet background
	}
	for i := 100; i < 120; i++ {
		vals[i] = 50 // burst
	}
	return vals
}

func TestDetectBurst(t *testing.T) {
	events, err := Detect(burstSignal(), 4, 40, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.Start < 100 || e.Start > 110 {
		t.Fatalf("start = %d", e.Start)
	}
	if e.MaxRatio < 3 {
		t.Fatalf("max ratio = %v", e.MaxRatio)
	}
	if e.Peak < e.Start || e.Peak >= e.End {
		t.Fatalf("peak %d outside [%d, %d)", e.Peak, e.Start, e.End)
	}
}

func TestDetectOpenEventClosesAtEnd(t *testing.T) {
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = 1
	}
	for i := 100; i < 120; i++ {
		vals[i] = 50 // burst runs to the end of the series
	}
	events, err := Detect(vals, 4, 40, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].End != 120 {
		t.Fatalf("events = %+v", events)
	}
}

func TestDetectValidation(t *testing.T) {
	if _, err := Detect(nil, 4, 40, 2, 2); err == nil {
		t.Fatal("detrigger >= trigger accepted")
	}
	if _, err := Detect(nil, 0, 40, 3, 1); err == nil {
		t.Fatal("bad windows accepted")
	}
}

func TestDetectQuietSignalNoEvents(t *testing.T) {
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(1 + i%3)
	}
	events, err := Detect(vals, 4, 40, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("phantom events: %+v", events)
	}
}
