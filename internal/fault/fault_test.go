package fault

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	bad := []string{
		"registrar.http",                   // no kind/rate
		"registrar.http=error",             // no rate
		"=error:0.5",                       // empty point
		"registrar.http=explode:0.5",       // unknown kind
		"registrar.http=error:1.5",         // rate out of range
		"registrar.http=error:-0.1",        // negative rate
		"registrar.http=error:x",           // unparsable rate
		"registrar.http=error:0.5:10ms",    // duration on error
		"registrar.http=latency:0.5:ten",   // bad duration
		"registrar.http=latency:0.5:-5ms",  // negative duration
		"registrar.http=latency:0.5:1s:2s", // too many fields
		"a=error:0.5,b",                    // bad second clause
	}
	for _, spec := range bad {
		if _, err := New(spec, 0); err == nil {
			t.Errorf("accepted %q", spec)
		}
	}
}

func TestDisabledSpecs(t *testing.T) {
	for _, spec := range []string{"", "off", "none", "  off  "} {
		in, err := New(spec, 7)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		if in.Enabled() {
			t.Errorf("spec %q enabled", spec)
		}
		if act := in.Check(PointHTTP); act != (Action{}) {
			t.Errorf("spec %q injected %+v", spec, act)
		}
	}
	var nilIn *Injector
	if nilIn.Enabled() || nilIn.Check(PointHTTP) != (Action{}) || nilIn.Fired(PointHTTP) != 0 {
		t.Error("nil injector not inert")
	}
}

func TestRateExtremes(t *testing.T) {
	always := MustNew("p=error:1", 1)
	never := MustNew("p=error:0", 1)
	for i := 0; i < 100; i++ {
		if always.Check("p").Err == nil {
			t.Fatal("rate 1 did not fire")
		}
		if never.Check("p").Err != nil {
			t.Fatal("rate 0 fired")
		}
	}
	if got := always.Fired("p"); got != 100 {
		t.Fatalf("fired = %d", got)
	}
	if got := never.Fired("p"); got != 0 {
		t.Fatalf("fired = %d", got)
	}
	if got := never.Checks("p"); got != 100 {
		t.Fatalf("checks = %d", got)
	}
}

// drawSeq records the fire/no-fire decisions of n sequential checks.
func drawSeq(in *Injector, point string, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if in.Check(point).Err != nil {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func TestDeterminism(t *testing.T) {
	const spec = "p=error:0.5,q=error:0.5"
	a, b := MustNew(spec, 42), MustNew(spec, 42)
	if x, y := drawSeq(a, "p", 64), drawSeq(b, "p", 64); x != y {
		t.Fatalf("same seed diverged:\n%s\n%s", x, y)
	}
	if x, y := drawSeq(a, "q", 64), drawSeq(b, "q", 64); x != y {
		t.Fatalf("same seed diverged on q:\n%s\n%s", x, y)
	}
	// A different seed (or a different point) draws a different
	// sequence; with 64 fair coin flips a collision is a 2^-64 event.
	if x, y := drawSeq(MustNew(spec, 1), "p", 64), drawSeq(MustNew(spec, 2), "p", 64); x == y {
		t.Fatal("different seeds drew identical sequences")
	}
	if x, y := drawSeq(MustNew(spec, 42), "p", 64), drawSeq(MustNew(spec, 42), "q", 64); x == y {
		t.Fatal("different points drew identical sequences")
	}
}

func TestRateRough(t *testing.T) {
	in := MustNew("p=error:0.25", 9)
	fired := 0
	for i := 0; i < 4000; i++ {
		if in.Check("p").Err != nil {
			fired++
		}
	}
	if fired < 800 || fired > 1200 {
		t.Fatalf("rate 0.25 fired %d/4000", fired)
	}
}

func TestLatencyAndStallDurations(t *testing.T) {
	in := MustNew("a=latency:1,b=latency:1:3ms,c=stall:1,d=stall:1:7ms", 0)
	if got := in.Check("a").Delay; got != defaultLatency {
		t.Fatalf("default latency = %v", got)
	}
	if got := in.Check("b").Delay; got != 3*time.Millisecond {
		t.Fatalf("explicit latency = %v", got)
	}
	if got := in.Check("c").Delay; got != defaultStall {
		t.Fatalf("default stall = %v", got)
	}
	if got := in.Check("d").Delay; got != 7*time.Millisecond {
		t.Fatalf("explicit stall = %v", got)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	act := Action{Delay: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err := act.Wait(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatal("Wait ignored cancellation")
	}
	if err := (Action{}).Wait(ctx); err != nil {
		t.Fatalf("zero action waited: %v", err)
	}
}

func TestInjectedErrorIsDegradable(t *testing.T) {
	act := MustNew("p=error:1", 0).Check("p")
	var d interface{ Degradable() bool }
	if !errors.As(act.Err, &d) || !d.Degradable() {
		t.Fatalf("injected error not degradable: %v", act.Err)
	}
}

func TestCorruptReaderFlipsExactlyOneByte(t *testing.T) {
	orig := make([]byte, 1024)
	for i := range orig {
		orig[i] = byte(i)
	}
	for seed := uint64(0); seed < 16; seed++ {
		got, err := io.ReadAll(CorruptReader(bytes.NewReader(orig), seed))
		if err != nil {
			t.Fatal(err)
		}
		diffs := 0
		for i := range orig {
			if got[i] != orig[i] {
				diffs++
				if i >= corruptWindow {
					t.Fatalf("seed %d corrupted byte %d outside window", seed, i)
				}
			}
		}
		if diffs != 1 {
			t.Fatalf("seed %d flipped %d bytes", seed, diffs)
		}
	}
	// Tiny reads still corrupt deterministically.
	r := CorruptReader(bytes.NewReader(orig), 5)
	var out []byte
	buf := make([]byte, 3)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	if out[5] == orig[5] {
		t.Fatal("target byte not flipped across small reads")
	}
}

func TestCorruptRuleYieldsSeed(t *testing.T) {
	in := MustNew("p=corrupt:1", 3)
	a, b := in.Check("p"), in.Check("p")
	if !a.Corrupt || !b.Corrupt {
		t.Fatal("corrupt rule did not fire")
	}
	if a.CorruptSeed == b.CorruptSeed {
		t.Fatal("corrupt seeds identical across calls")
	}
}
