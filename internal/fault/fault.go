// Package fault implements deterministic, seed-driven fault injection
// for the chunk ingestion path. Production code declares named
// injection points ("registrar.http", "mseed.decode", ...); an
// Injector — built from a schedule spec like
//
//	registrar.http=error:0.05,mseed.decode=corrupt:0.01,cache.fill=latency:0.1:5ms
//
// — decides at each point whether a fault fires. Decisions are a pure
// function of (seed, point, per-point call sequence number), so a run
// with the same schedule, seed and call order injects the same faults:
// chaos tests are reproducible and failures replayable.
//
// The zero value of the check is free in the common case: a nil
// *Injector (faults disabled) returns the zero Action without a map
// lookup, and an Action with no fault is a handful of branches. The
// schedule can come from the SOMMELIER_FAULTS / SOMMELIER_FAULT_SEED
// environment (Default) or be configured programmatically (New).
package fault

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection point names. Points are plain strings — a new
// point needs no registration — but the wired-in ones are listed here
// so schedules and docs have one vocabulary.
const (
	// PointHTTP fires in the HTTPRepository transport, before each
	// request attempt (error = transport failure, latency = slow
	// archive, stall = hung connection).
	PointHTTP = "registrar.http"
	// PointDecode fires around miniSEED decoding of a fetched chunk
	// (corrupt = bit-flipped payload, error = unreadable chunk).
	PointDecode = "mseed.decode"
	// PointCacheFill fires after a chunk is loaded, before it becomes
	// resident (error = ingestion failure past the transport).
	PointCacheFill = "cache.fill"
	// PointFlight fires at the head of the exec singleflight leader's
	// load, covering the whole ingestion of one chunk.
	PointFlight = "exec.flight"
	// PointAdmit fires in the server's admission gate, before a request
	// is queued or dispatched (error = synthetic shed, latency/stall =
	// a slow gate holding the handler).
	PointAdmit = "server.admit"
	// PointMorsel fires at every top-level morsel-range claim of the
	// stage-2 drain, materialized and streaming alike (latency/stall =
	// a worker wedged mid-query; the watchdog and shed paths must
	// release every pooled batch regardless).
	PointMorsel = "exec.morsel"
)

// Environment variables read by Default.
const (
	EnvFaults = "SOMMELIER_FAULTS"
	EnvSeed   = "SOMMELIER_FAULT_SEED"
)

// Kind is the failure mode of one schedule rule.
type Kind uint8

// The four failure modes.
const (
	KindError   Kind = iota // the point returns an injected *Error
	KindLatency             // the point delays by the rule's duration
	KindCorrupt             // the point's payload has one byte flipped
	KindStall               // long latency (default 30s): a hung peer
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindCorrupt:
		return "corrupt"
	case KindStall:
		return "stall"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Default latencies for duration-less latency/stall rules.
const (
	defaultLatency = 10 * time.Millisecond
	defaultStall   = 30 * time.Second
)

// rule is one parsed "point=kind:rate[:dur]" clause.
type rule struct {
	kind Kind
	rate float64
	dur  time.Duration
}

// point aggregates the rules and call counters of one injection point.
type point struct {
	rules  []rule
	checks atomic.Uint64 // sequence number source: one per Check
	fired  atomic.Uint64 // checks where at least one rule fired
}

// Injector decides, per named point, whether a fault fires. A nil
// Injector is valid and injects nothing; methods are safe for
// concurrent use.
type Injector struct {
	seed   int64
	spec   string
	points map[string]*point
}

// Disabled is an explicitly inert injector: unlike leaving the field
// nil (which in the engine falls back to the environment schedule), it
// guarantees no faults regardless of SOMMELIER_FAULTS. Tests building
// strict reference results use it.
func Disabled() *Injector { return &Injector{spec: "off"} }

// New parses a fault schedule. The grammar is comma-separated clauses
//
//	point=kind:rate[:duration]
//
// with kind ∈ {error, latency, corrupt, stall}, rate a probability in
// [0,1], and duration (latency/stall only) a Go duration like "5ms".
// The specs "", "off" and "none" yield an inert injector.
func New(spec string, seed int64) (*Injector, error) {
	in := &Injector{seed: seed, spec: spec}
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" || trimmed == "off" || trimmed == "none" {
		return in, nil
	}
	in.points = make(map[string]*point)
	for _, clause := range strings.Split(trimmed, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("fault: clause %q: want point=kind:rate[:dur]", clause)
		}
		parts := strings.Split(rest, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("fault: clause %q: want point=kind:rate[:dur]", clause)
		}
		var r rule
		switch parts[0] {
		case "error":
			r.kind = KindError
		case "latency":
			r.kind = KindLatency
		case "corrupt":
			r.kind = KindCorrupt
		case "stall":
			r.kind = KindStall
		default:
			return nil, fmt.Errorf("fault: clause %q: unknown kind %q (want error|latency|corrupt|stall)", clause, parts[0])
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("fault: clause %q: rate must be a probability in [0,1]", clause)
		}
		r.rate = rate
		if len(parts) == 3 {
			if r.kind != KindLatency && r.kind != KindStall {
				return nil, fmt.Errorf("fault: clause %q: duration only applies to latency/stall", clause)
			}
			d, err := time.ParseDuration(parts[2])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: clause %q: bad duration %q", clause, parts[2])
			}
			r.dur = d
		} else if r.kind == KindLatency {
			r.dur = defaultLatency
		} else if r.kind == KindStall {
			r.dur = defaultStall
		}
		pname := strings.TrimSpace(name)
		p := in.points[pname]
		if p == nil {
			p = &point{}
			in.points[pname] = p
		}
		p.rules = append(p.rules, r)
	}
	return in, nil
}

// MustNew is New for compile-time-constant specs in tests.
func MustNew(spec string, seed int64) *Injector {
	in, err := New(spec, seed)
	if err != nil {
		panic(err)
	}
	return in
}

var (
	defOnce sync.Once
	def     *Injector
)

// Default returns the process-wide injector parsed once from
// SOMMELIER_FAULTS / SOMMELIER_FAULT_SEED, or nil when the environment
// sets no schedule. A malformed environment schedule is reported on
// stderr and ignored rather than silently arming nothing wrong — fault
// injection must never take a production process down by itself.
func Default() *Injector {
	defOnce.Do(func() {
		spec := os.Getenv(EnvFaults)
		if strings.TrimSpace(spec) == "" {
			return
		}
		var seed int64
		if s := os.Getenv(EnvSeed); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fault: ignoring %s=%q: %v\n", EnvSeed, s, err)
			}
			seed = v
		}
		in, err := New(spec, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault: ignoring %s: %v\n", EnvFaults, err)
			return
		}
		def = in
	})
	return def
}

// Enabled reports whether any rule is armed.
func (in *Injector) Enabled() bool { return in != nil && len(in.points) > 0 }

// Spec returns the schedule string the injector was built from.
func (in *Injector) Spec() string {
	if in == nil {
		return ""
	}
	return in.spec
}

// Seed returns the injector's decision seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Action is the outcome of one Check: what the instrumented point must
// do before (or instead of) its real work. The zero Action means "no
// fault".
type Action struct {
	// Err, when non-nil, is the fault the point should fail with (an
	// *Error, which is Degradable).
	Err error
	// Delay is added latency the point should Wait out first.
	Delay time.Duration
	// Corrupt asks the point to flip a byte of its payload, using
	// CorruptSeed to pick which (see CorruptReader).
	Corrupt     bool
	CorruptSeed uint64
}

// Check draws the fault decision for one call of a named point. Nil
// receiver and unarmed points return the zero Action.
func (in *Injector) Check(pointName string) Action {
	if in == nil || in.points == nil {
		return Action{}
	}
	p := in.points[pointName]
	if p == nil {
		return Action{}
	}
	seq := p.checks.Add(1)
	var act Action
	hit := false
	for i, r := range p.rules {
		h := mix(mix(uint64(in.seed), hashString(pointName)+uint64(i)*0x9e3779b97f4a7c15), seq)
		if r.rate < 1 && unit(h) >= r.rate {
			continue
		}
		hit = true
		switch r.kind {
		case KindError:
			if act.Err == nil {
				act.Err = &Error{Point: pointName, Seq: seq}
			}
		case KindLatency, KindStall:
			act.Delay += r.dur
		case KindCorrupt:
			act.Corrupt = true
			act.CorruptSeed = mix(h, 0xc0ffee)
		}
	}
	if hit {
		p.fired.Add(1)
	}
	return act
}

// Wait sleeps out the action's injected delay, honoring context
// cancellation. It is a no-op (no timer, no allocation) when no delay
// was injected.
func (a Action) Wait(ctx context.Context) error {
	if a.Delay <= 0 {
		return nil
	}
	t := time.NewTimer(a.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Checks reports how many times a point has been checked.
func (in *Injector) Checks(pointName string) uint64 {
	if in == nil || in.points == nil || in.points[pointName] == nil {
		return 0
	}
	return in.points[pointName].checks.Load()
}

// Fired reports how many checks of a point injected at least one fault.
func (in *Injector) Fired(pointName string) uint64 {
	if in == nil || in.points == nil || in.points[pointName] == nil {
		return 0
	}
	return in.points[pointName].fired.Load()
}

// Error is an injected fault. It is Degradable: a degraded-mode query
// treats the afflicted chunk like any other unavailable chunk and
// proceeds without it.
type Error struct {
	Point string // injection point that fired
	Seq   uint64 // the point's call sequence number
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected error at %s (call %d)", e.Point, e.Seq)
}

// Degradable marks injected errors as availability (not correctness)
// failures: see the exec package's degraded mode.
func (e *Error) Degradable() bool { return true }

// CorruptReader wraps r so that exactly one byte of the stream — chosen
// deterministically from seed, within the first corruptWindow bytes —
// is XOR-flipped. Corrupting the early bytes lands in the chunk header
// region, which every decoder must validate.
func CorruptReader(r io.Reader, seed uint64) io.Reader {
	return &corruptReader{r: r, target: int64(seed % corruptWindow)}
}

const corruptWindow = 256

type corruptReader struct {
	r      io.Reader
	target int64
	pos    int64
	done   bool
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 && !c.done {
		if c.target >= c.pos && c.target < c.pos+int64(n) {
			p[c.target-c.pos] ^= 0x5a
			c.done = true
		}
		c.pos += int64(n)
	}
	return n, err
}

// mix is a splitmix64-style 64-bit finalizer combining two words.
func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
