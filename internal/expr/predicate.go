package expr

import (
	"fmt"
	"strings"

	"sommelier/internal/storage"
)

// Conjuncts splits a predicate into its top-level AND conjuncts.
func Conjuncts(e Expr) []Expr {
	if a, ok := e.(*And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// Conjoin combines the expressions with AND; nil for an empty slice.
func Conjoin(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = NewAnd(out, e)
		}
	}
	return out
}

// Columns returns the distinct column names referenced by e, in first
// appearance order.
func Columns(e Expr) []string {
	var names []string
	seen := make(map[string]bool)
	e.Walk(func(x Expr) {
		if c, ok := x.(*ColRef); ok && !seen[c.Name] {
			seen[c.Name] = true
			names = append(names, c.Name)
		}
	})
	return names
}

// Tables returns the distinct table qualifiers referenced by e
// ("F.station" contributes "F"); unqualified references are skipped.
func Tables(e Expr) []string {
	var tabs []string
	seen := make(map[string]bool)
	for _, c := range Columns(e) {
		if i := strings.IndexByte(c, '.'); i > 0 {
			t := c[:i]
			if !seen[t] {
				seen[t] = true
				tabs = append(tabs, t)
			}
		}
	}
	return tabs
}

// SelectRows evaluates a bound boolean predicate over the batch and
// returns the indexes of the qualifying rows.
func SelectRows(pred Expr, b *storage.Batch) []int32 {
	if pred == nil {
		idx := make([]int32, b.Len())
		for i := range idx {
			idx[i] = int32(i)
		}
		return idx
	}
	mask := storage.Bools(pred.Eval(b))
	idx := make([]int32, 0, len(mask)/2)
	for i, ok := range mask {
		if ok {
			idx = append(idx, int32(i))
		}
	}
	return idx
}

// EqConst reports whether e is `col = const` and returns the parts.
func EqConst(e Expr) (col string, c *Const, ok bool) {
	cmp, isCmp := e.(*Cmp)
	if !isCmp || cmp.Op != EQ {
		return "", nil, false
	}
	if cr, isCol := cmp.L.(*ColRef); isCol {
		if k, isConst := cmp.R.(*Const); isConst {
			return cr.Name, k, true
		}
	}
	if cr, isCol := cmp.R.(*ColRef); isCol {
		if k, isConst := cmp.L.(*Const); isConst {
			return cr.Name, k, true
		}
	}
	return "", nil, false
}

// RangeConst reports whether e is an inequality between a column and a
// constant (`col < c`, `col >= c`, ...) and returns the parts with the
// operator normalized so the column is on the left.
func RangeConst(e Expr) (col string, op CmpOp, c *Const, ok bool) {
	cmp, isCmp := e.(*Cmp)
	if !isCmp {
		return "", 0, nil, false
	}
	switch cmp.Op {
	case LT, LE, GT, GE:
	default:
		return "", 0, nil, false
	}
	if cr, isCol := cmp.L.(*ColRef); isCol {
		if k, isConst := cmp.R.(*Const); isConst {
			return cr.Name, cmp.Op, k, true
		}
	}
	if cr, isCol := cmp.R.(*ColRef); isCol {
		if k, isConst := cmp.L.(*Const); isConst {
			return cr.Name, flip(cmp.Op), k, true
		}
	}
	return "", 0, nil, false
}

// FlipCmp mirrors an inequality so the column lands on the left:
// `c < x` becomes `x > c`. Equality operators are unchanged.
func FlipCmp(op CmpOp) CmpOp { return flip(op) }

func flip(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return op
}

// JoinEq reports whether e is `colA = colB` between two column
// references, returning both names.
func JoinEq(e Expr) (left, right string, ok bool) {
	cmp, isCmp := e.(*Cmp)
	if !isCmp || cmp.Op != EQ {
		return "", "", false
	}
	l, lok := cmp.L.(*ColRef)
	r, rok := cmp.R.(*ColRef)
	if lok && rok {
		return l.Name, r.Name, true
	}
	return "", "", false
}

// HasParams reports whether e contains any parameter placeholder.
func HasParams(e Expr) bool {
	if e == nil {
		return false
	}
	found := false
	e.Walk(func(x Expr) {
		if _, ok := x.(*Param); ok {
			found = true
		}
	})
	return found
}

// NumParams returns the number of distinct parameters referenced by e
// (the highest ordinal + 1); 0 when e is nil or parameter-free.
func NumParams(e Expr) int {
	n := 0
	if e == nil {
		return 0
	}
	e.Walk(func(x Expr) {
		if p, ok := x.(*Param); ok && p.Ord+1 > n {
			n = p.Ord + 1
		}
	})
	return n
}

// SubstParams returns a deep copy of e with every Param replaced by a
// copy of the corresponding constant in vals. The input expression is
// not modified, so one cached plan can be executed concurrently with
// different argument sets.
func SubstParams(e Expr, vals []*Const) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	switch e := e.(type) {
	case *ColRef:
		return &ColRef{Name: e.Name, Idx: -1}, nil
	case *Const:
		cc := *e
		return &cc, nil
	case *Param:
		if e.Ord < 0 || e.Ord >= len(vals) || vals[e.Ord] == nil {
			return nil, fmt.Errorf("expr: parameter ?%d has no argument (%d given)", e.Ord+1, len(vals))
		}
		cc := *vals[e.Ord]
		cc.memo, cc.memoLen = nil, 0
		return &cc, nil
	case *Cmp:
		l, err := SubstParams(e.L, vals)
		if err != nil {
			return nil, err
		}
		r, err := SubstParams(e.R, vals)
		if err != nil {
			return nil, err
		}
		return &Cmp{Op: e.Op, L: l, R: r}, nil
	case *And:
		l, err := SubstParams(e.L, vals)
		if err != nil {
			return nil, err
		}
		r, err := SubstParams(e.R, vals)
		if err != nil {
			return nil, err
		}
		return &And{L: l, R: r}, nil
	case *Or:
		l, err := SubstParams(e.L, vals)
		if err != nil {
			return nil, err
		}
		r, err := SubstParams(e.R, vals)
		if err != nil {
			return nil, err
		}
		return &Or{L: l, R: r}, nil
	case *Not:
		in, err := SubstParams(e.E, vals)
		if err != nil {
			return nil, err
		}
		return &Not{E: in}, nil
	case *Arith:
		l, err := SubstParams(e.L, vals)
		if err != nil {
			return nil, err
		}
		r, err := SubstParams(e.R, vals)
		if err != nil {
			return nil, err
		}
		return &Arith{Op: e.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("expr: SubstParams of unknown node %T", e)
	}
}

// Clone deep-copies an expression tree so one logical predicate can be
// bound against several operator schemas independently.
func Clone(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *ColRef:
		return &ColRef{Name: e.Name, Idx: -1}
	case *Const:
		cc := *e
		return &cc
	case *Param:
		pc := *e
		return &pc
	case *Cmp:
		return &Cmp{Op: e.Op, L: Clone(e.L), R: Clone(e.R)}
	case *And:
		return &And{L: Clone(e.L), R: Clone(e.R)}
	case *Or:
		return &Or{L: Clone(e.L), R: Clone(e.R)}
	case *Not:
		return &Not{E: Clone(e.E)}
	case *Arith:
		return &Arith{Op: e.Op, L: Clone(e.L), R: Clone(e.R)}
	default:
		panic("expr: Clone of unknown node")
	}
}
