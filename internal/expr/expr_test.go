package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sommelier/internal/storage"
)

func testBatch() (*storage.Batch, []string, []storage.Kind) {
	b := storage.NewBatch(
		storage.NewInt64Column([]int64{1, 2, 3, 4}),
		storage.NewFloat64Column([]float64{1.5, -2, 0, 4}),
		storage.NewStringColumn([]string{"ISK", "FIAM", "ISK", "XYZ"}),
		storage.NewTimeColumn([]int64{100, 200, 300, 400}),
	)
	names := []string{"F.id", "D.val", "F.station", "D.ts"}
	kinds := []storage.Kind{storage.KindInt64, storage.KindFloat64, storage.KindString, storage.KindTime}
	return b, names, kinds
}

func mustBind(t *testing.T, e Expr, names []string, kinds []storage.Kind) {
	t.Helper()
	if _, err := e.Bind(names, kinds); err != nil {
		t.Fatal(err)
	}
}

func TestColRefBindQualified(t *testing.T) {
	b, names, kinds := testBatch()
	c := Col("station") // unqualified matches F.station
	k, err := c.Bind(names, kinds)
	if err != nil || k != storage.KindString {
		t.Fatalf("bind: %v %v", k, err)
	}
	if got := c.Eval(b).(*storage.StringColumn).Value(1); got != "FIAM" {
		t.Fatalf("eval = %q", got)
	}
	if _, err := Col("nope").Bind(names, kinds); err == nil {
		t.Fatal("binding unknown column should fail")
	}
}

func TestCmpIntConst(t *testing.T) {
	b, names, kinds := testBatch()
	e := NewCmp(GT, Col("F.id"), Int(2))
	mustBind(t, e, names, kinds)
	got := storage.Bools(e.Eval(b))
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v", i, got)
		}
	}
}

func TestCmpIntFloatPromotion(t *testing.T) {
	b, names, kinds := testBatch()
	e := NewCmp(LT, Col("F.id"), Col("D.val"))
	mustBind(t, e, names, kinds)
	got := storage.Bools(e.Eval(b))
	want := []bool{true, false, false, false} // 1<1.5, 2<-2, 3<0, 4<4
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v", i, got)
		}
	}
}

func TestCmpStringDictFastPath(t *testing.T) {
	b, names, kinds := testBatch()
	eq := NewCmp(EQ, Col("F.station"), Str("ISK"))
	mustBind(t, eq, names, kinds)
	got := storage.Bools(eq.Eval(b))
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eq row %d: %v", i, got)
		}
	}
	ne := NewCmp(NE, Col("F.station"), Str("ISK"))
	mustBind(t, ne, names, kinds)
	gotNE := storage.Bools(ne.Eval(b))
	for i := range want {
		if gotNE[i] == got[i] {
			t.Fatalf("ne row %d should complement eq", i)
		}
	}
	// Absent constant: all false for EQ, all true for NE.
	absent := NewCmp(EQ, Col("F.station"), Str("ZZZ"))
	mustBind(t, absent, names, kinds)
	for i, v := range storage.Bools(absent.Eval(b)) {
		if v {
			t.Fatalf("row %d matched absent constant", i)
		}
	}
}

func TestCmpTime(t *testing.T) {
	b, names, kinds := testBatch()
	e := NewCmp(GE, Col("D.ts"), Time(300))
	mustBind(t, e, names, kinds)
	got := storage.Bools(e.Eval(b))
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v", i, got)
		}
	}
}

func TestLogicAndOrNot(t *testing.T) {
	b, names, kinds := testBatch()
	e := NewAnd(
		NewCmp(GT, Col("F.id"), Int(1)),
		NewNot(NewCmp(EQ, Col("F.station"), Str("XYZ"))),
	)
	mustBind(t, e, names, kinds)
	got := storage.Bools(e.Eval(b))
	want := []bool{false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("and row %d: %v", i, got)
		}
	}
	o := NewOr(NewCmp(EQ, Col("F.id"), Int(1)), NewCmp(EQ, Col("F.id"), Int(4)))
	mustBind(t, o, names, kinds)
	gotOr := storage.Bools(o.Eval(b))
	wantOr := []bool{true, false, false, true}
	for i := range wantOr {
		if gotOr[i] != wantOr[i] {
			t.Fatalf("or row %d: %v", i, gotOr)
		}
	}
}

func TestBindErrors(t *testing.T) {
	_, names, kinds := testBatch()
	cases := []Expr{
		NewCmp(EQ, Col("F.station"), Int(1)),    // string vs int
		NewAnd(Col("F.id"), Bool(true)),         // non-bool operand
		NewNot(Col("F.id")),                     // non-bool operand
		NewArith(Add, Col("F.station"), Int(1)), // string arithmetic
		NewCmp(LT, Col("F.station"), Col("F.id")),
	}
	for i, e := range cases {
		if _, err := e.Bind(names, kinds); err == nil {
			t.Errorf("case %d (%s): expected bind error", i, e)
		}
	}
}

func TestArith(t *testing.T) {
	b, names, kinds := testBatch()
	e := NewArith(Mul, Col("F.id"), Int(3))
	k, err := e.Bind(names, kinds)
	if err != nil || k != storage.KindInt64 {
		t.Fatalf("bind: %v %v", k, err)
	}
	got := storage.Int64s(e.Eval(b))
	for i, v := range []int64{3, 6, 9, 12} {
		if got[i] != v {
			t.Fatalf("mul row %d = %d", i, got[i])
		}
	}
	d := NewArith(Div, Col("F.id"), Int(2))
	k, err = d.Bind(names, kinds)
	if err != nil || k != storage.KindFloat64 {
		t.Fatalf("div should be float: %v %v", k, err)
	}
	if got := storage.Float64s(d.Eval(b)); got[2] != 1.5 {
		t.Fatalf("3/2 = %v", got[2])
	}
}

func TestConjunctsConjoin(t *testing.T) {
	a := NewCmp(EQ, Col("x"), Int(1))
	b := NewCmp(EQ, Col("y"), Int(2))
	c := NewCmp(EQ, Col("z"), Int(3))
	e := NewAnd(NewAnd(a, b), c)
	cj := Conjuncts(e)
	if len(cj) != 3 {
		t.Fatalf("conjuncts = %d", len(cj))
	}
	if Conjoin(nil) != nil {
		t.Fatal("conjoin of nothing should be nil")
	}
	if got := Conjoin([]Expr{a}); got != a {
		t.Fatal("conjoin of one should be identity")
	}
	if got := Conjoin(cj); len(Conjuncts(got)) != 3 {
		t.Fatal("conjoin lost conjuncts")
	}
}

func TestColumnsTables(t *testing.T) {
	e := NewAnd(
		NewCmp(EQ, Col("F.station"), Str("ISK")),
		NewCmp(GT, Col("D.ts"), Col("F.id")),
	)
	cols := Columns(e)
	if len(cols) != 3 {
		t.Fatalf("columns = %v", cols)
	}
	tabs := Tables(e)
	if len(tabs) != 2 || tabs[0] != "F" || tabs[1] != "D" {
		t.Fatalf("tables = %v", tabs)
	}
}

func TestSelectRows(t *testing.T) {
	b, names, kinds := testBatch()
	e := NewCmp(EQ, Col("F.station"), Str("ISK"))
	mustBind(t, e, names, kinds)
	idx := SelectRows(e, b)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("idx = %v", idx)
	}
	all := SelectRows(nil, b)
	if len(all) != 4 {
		t.Fatalf("nil predicate should select all, got %v", all)
	}
}

func TestEqConstRangeConstJoinEq(t *testing.T) {
	if col, c, ok := EqConst(NewCmp(EQ, Col("F.station"), Str("ISK"))); !ok || col != "F.station" || c.S != "ISK" {
		t.Fatal("EqConst direct failed")
	}
	if col, _, ok := EqConst(NewCmp(EQ, Str("ISK"), Col("F.station"))); !ok || col != "F.station" {
		t.Fatal("EqConst reversed failed")
	}
	if _, _, ok := EqConst(NewCmp(LT, Col("a"), Int(1))); ok {
		t.Fatal("EqConst accepted inequality")
	}
	col, op, c, ok := RangeConst(NewCmp(LT, Int(5), Col("a")))
	if !ok || col != "a" || op != GT || c.I != 5 {
		t.Fatalf("RangeConst flip failed: %v %v %v %v", col, op, c, ok)
	}
	l, r, ok := JoinEq(NewCmp(EQ, Col("F.file_id"), Col("S.file_id")))
	if !ok || l != "F.file_id" || r != "S.file_id" {
		t.Fatal("JoinEq failed")
	}
	if _, _, ok := JoinEq(NewCmp(EQ, Col("a"), Int(1))); ok {
		t.Fatal("JoinEq accepted constant")
	}
}

func TestCloneIndependence(t *testing.T) {
	_, names, kinds := testBatch()
	orig := NewAnd(NewCmp(EQ, Col("F.station"), Str("ISK")), NewCmp(GT, Col("D.val"), Float(0)))
	cp := Clone(orig)
	mustBind(t, cp, names, kinds)
	// The original's ColRefs must remain unbound.
	orig.Walk(func(e Expr) {
		if c, ok := e.(*ColRef); ok && c.Idx != -1 {
			t.Fatalf("clone bound the original: %v", c)
		}
	})
	if cp.String() != orig.String() {
		t.Fatalf("clone changed shape: %s vs %s", cp, orig)
	}
}

// Property test: vectorized comparison agrees with a scalar oracle on
// random int64 data.
func TestQuickCmpOracle(t *testing.T) {
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	f := func(ls, rs []int64, opIdx uint8) bool {
		n := min(len(ls), len(rs))
		ls, rs = ls[:n], rs[:n]
		op := ops[int(opIdx)%len(ops)]
		b := storage.NewBatch(storage.NewInt64Column(ls), storage.NewInt64Column(rs))
		e := NewCmp(op, Col("l"), Col("r"))
		if _, err := e.Bind([]string{"l", "r"}, []storage.Kind{storage.KindInt64, storage.KindInt64}); err != nil {
			return false
		}
		got := storage.Bools(e.Eval(b))
		for i := 0; i < n; i++ {
			var want bool
			switch op {
			case EQ:
				want = ls[i] == rs[i]
			case NE:
				want = ls[i] != rs[i]
			case LT:
				want = ls[i] < rs[i]
			case LE:
				want = ls[i] <= rs[i]
			case GT:
				want = ls[i] > rs[i]
			case GE:
				want = ls[i] >= rs[i]
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property test: arithmetic evaluation agrees with a scalar oracle.
func TestQuickArithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(64) + 1
		ls := make([]float64, n)
		rs := make([]float64, n)
		for i := range ls {
			ls[i] = rng.NormFloat64() * 100
			rs[i] = rng.NormFloat64()*100 + 1
		}
		ops := []ArithOp{Add, Sub, Mul, Div}
		op := ops[rng.Intn(len(ops))]
		b := storage.NewBatch(storage.NewFloat64Column(ls), storage.NewFloat64Column(rs))
		e := NewArith(op, Col("l"), Col("r"))
		if _, err := e.Bind([]string{"l", "r"}, []storage.Kind{storage.KindFloat64, storage.KindFloat64}); err != nil {
			t.Fatal(err)
		}
		got := storage.Float64s(e.Eval(b))
		for i := 0; i < n; i++ {
			var want float64
			switch op {
			case Add:
				want = ls[i] + rs[i]
			case Sub:
				want = ls[i] - rs[i]
			case Mul:
				want = ls[i] * rs[i]
			case Div:
				want = ls[i] / rs[i]
			}
			if got[i] != want {
				t.Fatalf("trial %d row %d: %v != %v", trial, i, got[i], want)
			}
		}
	}
}
