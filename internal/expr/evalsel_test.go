package expr

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sommelier/internal/storage"
)

// randBatch builds a randomized batch over a fixed five-column schema:
// an int64 id, a timestamp, a float measurement, a low-cardinality
// station string and a bool flag.
func randBatch(rng *rand.Rand, n int) (*storage.Batch, []string, []storage.Kind) {
	ids := make([]int64, n)
	ts := make([]int64, n)
	vals := make([]float64, n)
	sts := make([]string, n)
	flags := make([]bool, n)
	stations := []string{"FIAM", "ISK", "AQU", "CERA"}
	for i := 0; i < n; i++ {
		ids[i] = rng.Int63n(16)
		ts[i] = time.Unix(0, 0).UnixNano() + rng.Int63n(1000)
		vals[i] = rng.NormFloat64() * 10
		sts[i] = stations[rng.Intn(len(stations))]
		flags[i] = rng.Intn(2) == 0
	}
	b := storage.NewBatch(
		storage.NewInt64Column(ids),
		storage.NewTimeColumn(ts),
		storage.NewFloat64Column(vals),
		storage.NewStringColumn(sts),
		storage.NewBoolColumn(flags),
	)
	names := []string{"D.id", "D.ts", "D.val", "D.station", "D.flag"}
	kinds := []storage.Kind{storage.KindInt64, storage.KindTime, storage.KindFloat64, storage.KindString, storage.KindBool}
	return b, names, kinds
}

// randPred builds a random predicate tree of the given depth.
func randPred(rng *rand.Rand, depth int) Expr {
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	if depth > 0 {
		switch rng.Intn(4) {
		case 0:
			return NewAnd(randPred(rng, depth-1), randPred(rng, depth-1))
		case 1:
			return NewOr(randPred(rng, depth-1), randPred(rng, depth-1))
		case 2:
			return NewNot(randPred(rng, depth-1))
		}
	}
	switch rng.Intn(8) {
	case 0:
		return NewCmp(ops[rng.Intn(len(ops))], Col("D.id"), Int(rng.Int63n(16)))
	case 1:
		return NewCmp(ops[rng.Intn(len(ops))], Col("D.ts"), Time(rng.Int63n(1000)))
	case 2:
		return NewCmp(ops[rng.Intn(len(ops))], Col("D.val"), Float(rng.NormFloat64()*10))
	case 3:
		// Constant on the left exercises the flipped kernels.
		return NewCmp(ops[rng.Intn(len(ops))], Float(rng.NormFloat64()*10), Col("D.val"))
	case 4:
		ss := []string{"FIAM", "ISK", "AQU", "CERA", "NOPE"}
		return NewCmp(ops[rng.Intn(len(ops))], Col("D.station"), Str(ss[rng.Intn(len(ss))]))
	case 5:
		// Column-vs-column and promoted int-vs-float comparisons.
		if rng.Intn(2) == 0 {
			return NewCmp(ops[rng.Intn(len(ops))], Col("D.id"), Col("D.ts"))
		}
		return NewCmp(ops[rng.Intn(len(ops))], Col("D.id"), Col("D.val"))
	case 6:
		return NewCmp([]CmpOp{EQ, NE}[rng.Intn(2)], Col("D.flag"), Bool(rng.Intn(2) == 0))
	default:
		return Bool(rng.Intn(2) == 0)
	}
}

// maskSel is the naive materializing reference: evaluate the predicate
// as a bool column and filter the candidate rows by it.
func maskSel(pred Expr, b *storage.Batch, sel []int32) []int32 {
	mask := storage.Bools(pred.Eval(b))
	var out []int32
	if sel == nil {
		for i, v := range mask {
			if v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if mask[i] {
			out = append(out, i)
		}
	}
	return out
}

// TestEvalSelDifferential asserts the fused selection-vector path
// produces row-for-row identical selections to the materializing
// bool-column path on randomized batches and predicates, with and
// without an input selection, including empty batches.
func TestEvalSelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := []int{0, 1, 7, 256}[rng.Intn(4)]
		b, names, kinds := randBatch(rng, n)
		pred := randPred(rng, rng.Intn(3))
		if _, err := pred.Bind(names, kinds); err != nil {
			t.Fatalf("bind %s: %v", pred, err)
		}
		// Fresh clones so the fused and mask paths cannot share memos.
		fused := Clone(pred)
		if _, err := fused.Bind(names, kinds); err != nil {
			t.Fatal(err)
		}

		var selIn []int32
		if rng.Intn(2) == 0 && n > 0 {
			for i := 0; i < n; i++ {
				if rng.Intn(3) > 0 {
					selIn = append(selIn, int32(i))
				}
			}
		}
		want := maskSel(pred, b, selIn)
		got := EvalSel(fused, b, selIn)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("trial %d pred %s selIn=%v:\n got %v\nwant %v", trial, pred, selIn, got, want)
		}
		storage.PutSel(got)
	}
}

// TestEvalSelEdges pins the degenerate shapes: all-pass, all-fail and
// constant predicates.
func TestEvalSelEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b, names, kinds := randBatch(rng, 100)
	for _, tc := range []struct {
		pred Expr
		want int
	}{
		{NewCmp(GE, Col("D.id"), Int(0)), 100},     // all pass
		{NewCmp(LT, Col("D.id"), Int(0)), 0},       // all fail
		{Bool(true), 100},                          // constant true
		{Bool(false), 0},                           // constant false
		{NewCmp(EQ, Col("D.station"), Str("")), 0}, // absent dictionary entry
	} {
		p := Clone(tc.pred)
		if _, err := p.Bind(names, kinds); err != nil {
			t.Fatalf("bind %s: %v", tc.pred, err)
		}
		got := EvalSel(p, b, nil)
		if len(got) != tc.want {
			t.Fatalf("%s: got %d rows, want %d", tc.pred, len(got), tc.want)
		}
		storage.PutSel(got)
	}
}

// TestConstEvalMemo asserts Const.Eval reuses the constant column
// across batches of the same length.
func TestConstEvalMemo(t *testing.T) {
	c := Int(42)
	b := storage.NewBatch(storage.NewInt64Column(make([]int64, 64)))
	first := c.Eval(b)
	second := c.Eval(b)
	if first != second {
		t.Fatal("Const.Eval did not memoize the constant column")
	}
	small := storage.NewBatch(storage.NewInt64Column(make([]int64, 8)))
	third := c.Eval(small)
	if third.Len() != 8 {
		t.Fatalf("memoized column leaked across lengths: len %d", third.Len())
	}
}
