package expr

import (
	"sommelier/internal/storage"
)

// EvalSel evaluates a bound boolean predicate over the rows of b named
// by sel (nil selects every row) and returns the qualifying row indexes
// as an ascending, pooled selection vector. It is the selection-vector
// counterpart of Eval: comparisons run as fused compare-and-select
// kernels that never materialize a bool column, AND evaluates its right
// operand only over the rows surviving the left, and OR evaluates its
// right operand only over the rows the left rejected.
//
// b must be contiguous (carry no deferred selection); pass the base
// batch and its selection separately. sel is read-only; the returned
// vector is always freshly drawn from the pool and must eventually be
// released with storage.PutSel (directly, or by attaching it to a batch
// whose consumer materializes it).
func EvalSel(e Expr, b *storage.Batch, sel []int32) []int32 {
	// No candidates: nothing can qualify, and the fallback paths would
	// still evaluate whole-batch columns (AND's right operand after an
	// all-rejecting left lands here with an empty selection).
	if sel != nil && len(sel) == 0 {
		return storage.GetSel(0)
	}
	n := b.Len()
	switch e := e.(type) {
	case *And:
		l := EvalSel(e.L, b, sel)
		out := EvalSel(e.R, b, l)
		storage.PutSel(l)
		return out
	case *Or:
		l := EvalSel(e.L, b, sel)
		rest := selComplement(sel, l, n)
		r := EvalSel(e.R, b, rest)
		storage.PutSel(rest)
		out := selMerge(l, r)
		storage.PutSel(l)
		storage.PutSel(r)
		return out
	case *Not:
		inner := EvalSel(e.E, b, sel)
		out := selComplement(sel, inner, n)
		storage.PutSel(inner)
		return out
	case *Const:
		if e.B {
			return selCopy(sel, n)
		}
		return storage.GetSel(0)
	case *ColRef:
		vals := storage.Bools(b.Cols[e.Idx])
		out := storage.GetSel(selLen(sel, n))
		if sel == nil {
			for i, v := range vals {
				if v {
					out = append(out, int32(i))
				}
			}
			return out
		}
		for _, i := range sel {
			if vals[i] {
				out = append(out, i)
			}
		}
		return out
	case *Cmp:
		if out, ok := evalSelCmp(e, b, sel); ok {
			return out
		}
		return evalSelMask(e, b, sel)
	default:
		return evalSelMask(e, b, sel)
	}
}

// selLen is the number of candidate rows.
func selLen(sel []int32, n int) int {
	if sel == nil {
		return n
	}
	return len(sel)
}

// selCopy clones sel into a pooled vector (identity for nil).
func selCopy(sel []int32, n int) []int32 {
	if sel == nil {
		return storage.IdentitySel(n)
	}
	out := storage.GetSel(len(sel))
	return append(out, sel...)
}

// selComplement returns the rows of sel (identity for nil) absent from
// sub, which must be an ascending subset of sel.
func selComplement(sel, sub []int32, n int) []int32 {
	out := storage.GetSel(selLen(sel, n) - len(sub))
	j := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if j < len(sub) && sub[j] == int32(i) {
				j++
				continue
			}
			out = append(out, int32(i))
		}
		return out
	}
	for _, i := range sel {
		if j < len(sub) && sub[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}

// selMerge merges two disjoint ascending selections into one.
func selMerge(a, b []int32) []int32 {
	out := storage.GetSel(len(a) + len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// evalSelMask is the generic fallback: evaluate the predicate as a bool
// column over the whole base batch and filter the candidates by it.
func evalSelMask(e Expr, b *storage.Batch, sel []int32) []int32 {
	mask := storage.Bools(e.Eval(b))
	out := storage.GetSel(selLen(sel, b.Len()))
	if sel == nil {
		for i, v := range mask {
			if v {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if mask[i] {
			out = append(out, i)
		}
	}
	return out
}

// evalSelCmp dispatches a comparison to a fused typed kernel. It
// handles column-vs-constant (either side) and column-vs-column
// operand shapes; anything else (arithmetic operands, ...) reports
// false and falls back to the mask path.
func evalSelCmp(c *Cmp, b *storage.Batch, sel []int32) ([]int32, bool) {
	n := b.Len()
	// Normalize constant-vs-column to column-vs-constant.
	if lcol, ok := c.L.(*ColRef); ok {
		if rc, ok := c.R.(*Const); ok {
			return cmpColConst(c, b.Cols[lcol.Idx], c.Op, rc, sel, n)
		}
		if rcol, ok := c.R.(*ColRef); ok {
			return cmpColCol(c, b.Cols[lcol.Idx], b.Cols[rcol.Idx], sel, n)
		}
	}
	if rcol, ok := c.R.(*ColRef); ok {
		if lc, ok := c.L.(*Const); ok {
			return cmpColConst(c, b.Cols[rcol.Idx], flip(c.Op), lc, sel, n)
		}
	}
	return nil, false
}

// cmpColConst fuses col op const over the candidate rows.
func cmpColConst(c *Cmp, col storage.Column, op CmpOp, k *Const, sel []int32, n int) ([]int32, bool) {
	switch c.lk {
	case storage.KindInt64, storage.KindTime:
		switch col := col.(type) {
		case *storage.Int64Column:
			return selCmpOrd(storage.Int64s(col), k.I, op, sel), true
		case *storage.TimeColumn:
			return selCmpOrd(storage.Int64s(col), k.I, op, sel), true
		}
	case storage.KindFloat64:
		cv := k.F
		if k.K != storage.KindFloat64 {
			cv = float64(k.I)
		}
		switch col := col.(type) {
		case *storage.Float64Column:
			return selCmpOrd(storage.Float64s(col), cv, op, sel), true
		case *storage.Int64Column:
			// Integer column promoted against a float constant.
			return selCmpIntAsFloat(storage.Int64s(col), cv, op, sel), true
		}
	case storage.KindString:
		sc, ok := col.(*storage.StringColumn)
		if !ok {
			return nil, false
		}
		return selCmpString(sc, k.S, op, sel, n), true
	case storage.KindBool:
		bc, ok := col.(*storage.BoolColumn)
		if !ok || (op != EQ && op != NE) {
			return nil, false
		}
		vals := storage.Bools(bc)
		out := storage.GetSel(selLen(sel, n))
		want := k.B == (op == EQ)
		if sel == nil {
			for i, v := range vals {
				if v == want {
					out = append(out, int32(i))
				}
			}
		} else {
			for _, i := range sel {
				if vals[i] == want {
					out = append(out, i)
				}
			}
		}
		return out, true
	}
	return nil, false
}

// cmpColCol fuses col op col when both sides share a physical
// representation; mixed int/float pairs fall back to the mask path.
func cmpColCol(c *Cmp, l, r storage.Column, sel []int32, n int) ([]int32, bool) {
	switch c.lk {
	case storage.KindInt64, storage.KindTime:
		return selCmpColsOrd(storage.Int64s(l), storage.Int64s(r), c.Op, sel, n), true
	case storage.KindFloat64:
		lf, lok := l.(*storage.Float64Column)
		rf, rok := r.(*storage.Float64Column)
		if !lok || !rok {
			return nil, false
		}
		return selCmpColsOrd(storage.Float64s(lf), storage.Float64s(rf), c.Op, sel, n), true
	}
	return nil, false
}

// selCmpOrd is the workhorse kernel: one pass over the candidates,
// comparing against a constant and collecting survivors.
func selCmpOrd[T int64 | float64](vals []T, cv T, op CmpOp, sel []int32) []int32 {
	out := storage.GetSel(selLen(sel, len(vals)))
	if sel == nil {
		switch op {
		case EQ:
			for i, v := range vals {
				if v == cv {
					out = append(out, int32(i))
				}
			}
		case NE:
			for i, v := range vals {
				if v != cv {
					out = append(out, int32(i))
				}
			}
		case LT:
			for i, v := range vals {
				if v < cv {
					out = append(out, int32(i))
				}
			}
		case LE:
			for i, v := range vals {
				if v <= cv {
					out = append(out, int32(i))
				}
			}
		case GT:
			for i, v := range vals {
				if v > cv {
					out = append(out, int32(i))
				}
			}
		case GE:
			for i, v := range vals {
				if v >= cv {
					out = append(out, int32(i))
				}
			}
		}
		return out
	}
	switch op {
	case EQ:
		for _, i := range sel {
			if vals[i] == cv {
				out = append(out, i)
			}
		}
	case NE:
		for _, i := range sel {
			if vals[i] != cv {
				out = append(out, i)
			}
		}
	case LT:
		for _, i := range sel {
			if vals[i] < cv {
				out = append(out, i)
			}
		}
	case LE:
		for _, i := range sel {
			if vals[i] <= cv {
				out = append(out, i)
			}
		}
	case GT:
		for _, i := range sel {
			if vals[i] > cv {
				out = append(out, i)
			}
		}
	case GE:
		for _, i := range sel {
			if vals[i] >= cv {
				out = append(out, i)
			}
		}
	}
	return out
}

// selCmpIntAsFloat compares an integer column against a float constant
// without materializing the promoted float vector; like selCmpOrd, the
// operator switch is hoisted out of the row loop.
func selCmpIntAsFloat(vals []int64, cv float64, op CmpOp, sel []int32) []int32 {
	out := storage.GetSel(selLen(sel, len(vals)))
	if sel == nil {
		switch op {
		case EQ:
			for i, v := range vals {
				if float64(v) == cv {
					out = append(out, int32(i))
				}
			}
		case NE:
			for i, v := range vals {
				if float64(v) != cv {
					out = append(out, int32(i))
				}
			}
		case LT:
			for i, v := range vals {
				if float64(v) < cv {
					out = append(out, int32(i))
				}
			}
		case LE:
			for i, v := range vals {
				if float64(v) <= cv {
					out = append(out, int32(i))
				}
			}
		case GT:
			for i, v := range vals {
				if float64(v) > cv {
					out = append(out, int32(i))
				}
			}
		case GE:
			for i, v := range vals {
				if float64(v) >= cv {
					out = append(out, int32(i))
				}
			}
		}
		return out
	}
	switch op {
	case EQ:
		for _, i := range sel {
			if float64(vals[i]) == cv {
				out = append(out, i)
			}
		}
	case NE:
		for _, i := range sel {
			if float64(vals[i]) != cv {
				out = append(out, i)
			}
		}
	case LT:
		for _, i := range sel {
			if float64(vals[i]) < cv {
				out = append(out, i)
			}
		}
	case LE:
		for _, i := range sel {
			if float64(vals[i]) <= cv {
				out = append(out, i)
			}
		}
	case GT:
		for _, i := range sel {
			if float64(vals[i]) > cv {
				out = append(out, i)
			}
		}
	case GE:
		for _, i := range sel {
			if float64(vals[i]) >= cv {
				out = append(out, i)
			}
		}
	}
	return out
}

// selCmpColsOrd compares two columns row-wise over the candidates,
// with the operator switch hoisted out of the row loop.
func selCmpColsOrd[T int64 | float64](l, r []T, op CmpOp, sel []int32, n int) []int32 {
	out := storage.GetSel(selLen(sel, n))
	if sel == nil {
		switch op {
		case EQ:
			for i := 0; i < n; i++ {
				if l[i] == r[i] {
					out = append(out, int32(i))
				}
			}
		case NE:
			for i := 0; i < n; i++ {
				if l[i] != r[i] {
					out = append(out, int32(i))
				}
			}
		case LT:
			for i := 0; i < n; i++ {
				if l[i] < r[i] {
					out = append(out, int32(i))
				}
			}
		case LE:
			for i := 0; i < n; i++ {
				if l[i] <= r[i] {
					out = append(out, int32(i))
				}
			}
		case GT:
			for i := 0; i < n; i++ {
				if l[i] > r[i] {
					out = append(out, int32(i))
				}
			}
		case GE:
			for i := 0; i < n; i++ {
				if l[i] >= r[i] {
					out = append(out, int32(i))
				}
			}
		}
		return out
	}
	switch op {
	case EQ:
		for _, i := range sel {
			if l[i] == r[i] {
				out = append(out, i)
			}
		}
	case NE:
		for _, i := range sel {
			if l[i] != r[i] {
				out = append(out, i)
			}
		}
	case LT:
		for _, i := range sel {
			if l[i] < r[i] {
				out = append(out, i)
			}
		}
	case LE:
		for _, i := range sel {
			if l[i] <= r[i] {
				out = append(out, i)
			}
		}
	case GT:
		for _, i := range sel {
			if l[i] > r[i] {
				out = append(out, i)
			}
		}
	case GE:
		for _, i := range sel {
			if l[i] >= r[i] {
				out = append(out, i)
			}
		}
	}
	return out
}

// selCmpString compares a dictionary-encoded column against a constant.
// Equality collapses to a dictionary-code comparison; ordered operators
// compare the decoded values.
func selCmpString(col *storage.StringColumn, cv string, op CmpOp, sel []int32, n int) []int32 {
	out := storage.GetSel(selLen(sel, n))
	if op == EQ || op == NE {
		code := col.Lookup(cv)
		if sel == nil {
			for i := 0; i < n; i++ {
				eq := code >= 0 && col.Code(i) == code
				if eq == (op == EQ) {
					out = append(out, int32(i))
				}
			}
			return out
		}
		for _, i := range sel {
			eq := code >= 0 && col.Code(int(i)) == code
			if eq == (op == EQ) {
				out = append(out, i)
			}
		}
		return out
	}
	if sel == nil {
		switch op {
		case LT:
			for i := 0; i < n; i++ {
				if col.Value(i) < cv {
					out = append(out, int32(i))
				}
			}
		case LE:
			for i := 0; i < n; i++ {
				if col.Value(i) <= cv {
					out = append(out, int32(i))
				}
			}
		case GT:
			for i := 0; i < n; i++ {
				if col.Value(i) > cv {
					out = append(out, int32(i))
				}
			}
		default:
			for i := 0; i < n; i++ {
				if col.Value(i) >= cv {
					out = append(out, int32(i))
				}
			}
		}
		return out
	}
	switch op {
	case LT:
		for _, i := range sel {
			if col.Value(int(i)) < cv {
				out = append(out, i)
			}
		}
	case LE:
		for _, i := range sel {
			if col.Value(int(i)) <= cv {
				out = append(out, i)
			}
		}
	case GT:
		for _, i := range sel {
			if col.Value(int(i)) > cv {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if col.Value(int(i)) >= cv {
				out = append(out, i)
			}
		}
	}
	return out
}
