// Package expr provides the expression language shared by the planner
// and the execution engine: column references, constants, comparisons,
// boolean connectives and arithmetic, with vectorized evaluation over
// storage batches.
package expr

import (
	"fmt"
	"strings"
	"time"

	"sommelier/internal/storage"
)

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	return [...]string{"+", "-", "*", "/"}[op]
}

// Expr is a scalar expression. Expressions are built unbound (column
// references carry only names) and must be bound against an output
// column list before evaluation.
type Expr interface {
	fmt.Stringer
	// Bind resolves column references against names and reports the
	// result kind of the expression. It must be called before Eval.
	Bind(names []string, kinds []storage.Kind) (storage.Kind, error)
	// Eval evaluates the expression over every row of the batch.
	Eval(b *storage.Batch) storage.Column
	// Walk visits the expression tree in prefix order.
	Walk(fn func(Expr))
}

// ColRef references a column by (qualified) name. Before binding Idx
// is -1.
type ColRef struct {
	Name string
	Idx  int
	kind storage.Kind
}

// Col returns an unbound column reference.
func Col(name string) *ColRef { return &ColRef{Name: name, Idx: -1} }

// String implements Expr.
func (c *ColRef) String() string { return c.Name }

// Bind implements Expr.
func (c *ColRef) Bind(names []string, kinds []storage.Kind) (storage.Kind, error) {
	for i, n := range names {
		if matchName(n, c.Name) {
			c.Idx = i
			c.kind = kinds[i]
			return c.kind, nil
		}
	}
	return storage.KindInvalid, fmt.Errorf("expr: unknown column %q (have %v)", c.Name, names)
}

// matchName matches a reference against an output name; an unqualified
// reference matches a qualified output name by its last component.
func matchName(have, want string) bool {
	if have == want {
		return true
	}
	if !strings.Contains(want, ".") {
		if i := strings.LastIndexByte(have, '.'); i >= 0 && have[i+1:] == want {
			return true
		}
	}
	return false
}

// Eval implements Expr.
func (c *ColRef) Eval(b *storage.Batch) storage.Column { return b.Cols[c.Idx] }

// Walk implements Expr.
func (c *ColRef) Walk(fn func(Expr)) { fn(c) }

// Const is a literal value.
type Const struct {
	K storage.Kind
	I int64 // KindInt64 and KindTime (ns since epoch)
	F float64
	S string
	B bool

	// memo caches the constant column of the last Eval so repeated
	// batches of the same length share one vector. Expressions are
	// cloned per operator and operators are single-goroutine, so the
	// memo is unsynchronized; columns are immutable, so clones sharing
	// a memo are safe.
	memo    storage.Column
	memoLen int
}

// Int returns an int64 literal.
func Int(v int64) *Const { return &Const{K: storage.KindInt64, I: v} }

// Float returns a float64 literal.
func Float(v float64) *Const { return &Const{K: storage.KindFloat64, F: v} }

// Str returns a string literal.
func Str(v string) *Const { return &Const{K: storage.KindString, S: v} }

// Bool returns a boolean literal.
func Bool(v bool) *Const { return &Const{K: storage.KindBool, B: v} }

// Time returns a timestamp literal from nanoseconds since epoch.
func Time(ns int64) *Const { return &Const{K: storage.KindTime, I: ns} }

// TimeVal returns a timestamp literal from a time.Time.
func TimeVal(t time.Time) *Const { return Time(t.UnixNano()) }

// String implements Expr.
func (c *Const) String() string {
	switch c.K {
	case storage.KindInt64:
		return fmt.Sprintf("%d", c.I)
	case storage.KindFloat64:
		return fmt.Sprintf("%g", c.F)
	case storage.KindString:
		return fmt.Sprintf("'%s'", c.S)
	case storage.KindBool:
		return fmt.Sprintf("%t", c.B)
	case storage.KindTime:
		return fmt.Sprintf("'%s'", time.Unix(0, c.I).UTC().Format("2006-01-02T15:04:05.000"))
	}
	return "NULL"
}

// Bind implements Expr.
func (c *Const) Bind([]string, []storage.Kind) (storage.Kind, error) { return c.K, nil }

// Eval implements Expr.
func (c *Const) Eval(b *storage.Batch) storage.Column {
	n := b.Len()
	if c.memo != nil && c.memoLen == n {
		return c.memo
	}
	col := c.eval(n)
	c.memo, c.memoLen = col, n
	return col
}

func (c *Const) eval(n int) storage.Column {
	switch c.K {
	case storage.KindInt64:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = c.I
		}
		return storage.NewInt64Column(vals)
	case storage.KindTime:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = c.I
		}
		return storage.NewTimeColumn(vals)
	case storage.KindFloat64:
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = c.F
		}
		return storage.NewFloat64Column(vals)
	case storage.KindBool:
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = c.B
		}
		return storage.NewBoolColumn(vals)
	case storage.KindString:
		vals := make([]string, n)
		for i := range vals {
			vals[i] = c.S
		}
		return storage.NewStringColumn(vals)
	}
	panic("expr: Eval on invalid const")
}

// Walk implements Expr.
func (c *Const) Walk(fn func(Expr)) { fn(c) }

// Param is a statement parameter placeholder (a `?` marker, or a
// literal the parser auto-parameterized). A compiled plan carries Param
// nodes unbound; the executor substitutes the per-execution argument
// values (SubstParams) before any operator binds the expression, so a
// Param never survives to Bind or Eval in a well-formed execution.
type Param struct {
	// Ord is the zero-based parameter ordinal, in source order.
	Ord int
}

// NewParam returns the placeholder for parameter ord (zero-based).
func NewParam(ord int) *Param { return &Param{Ord: ord} }

// String implements Expr.
func (p *Param) String() string { return fmt.Sprintf("?%d", p.Ord+1) }

// Bind implements Expr. A parameter cannot be typed without a value;
// reaching Bind means the expression escaped substitution (e.g. a
// parameter outside the WHERE clause).
func (p *Param) Bind([]string, []storage.Kind) (storage.Kind, error) {
	return storage.KindInvalid, fmt.Errorf("expr: parameter ?%d not bound to a value (parameters are only supported in WHERE predicates)", p.Ord+1)
}

// Eval implements Expr.
func (p *Param) Eval(*storage.Batch) storage.Column {
	panic(fmt.Sprintf("expr: Eval of unsubstituted parameter ?%d", p.Ord+1))
}

// Walk implements Expr.
func (p *Param) Walk(fn func(Expr)) { fn(p) }

// Cmp is a binary comparison.
type Cmp struct {
	Op   CmpOp
	L, R Expr
	lk   storage.Kind
}

// NewCmp returns the comparison l op r.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// String implements Expr.
func (c *Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// Bind implements Expr.
func (c *Cmp) Bind(names []string, kinds []storage.Kind) (storage.Kind, error) {
	lk, err := c.L.Bind(names, kinds)
	if err != nil {
		return storage.KindInvalid, err
	}
	rk, err := c.R.Bind(names, kinds)
	if err != nil {
		return storage.KindInvalid, err
	}
	// SQL writes timestamp literals as strings ('2010-01-12T22:15:00');
	// coerce a string constant compared against a TIMESTAMP column.
	if lk == storage.KindTime && rk == storage.KindString {
		if k, ok := c.R.(*Const); ok {
			if err := coerceTimeConst(k); err != nil {
				return storage.KindInvalid, err
			}
			rk = storage.KindTime
		}
	}
	if rk == storage.KindTime && lk == storage.KindString {
		if k, ok := c.L.(*Const); ok {
			if err := coerceTimeConst(k); err != nil {
				return storage.KindInvalid, err
			}
			lk = storage.KindTime
		}
	}
	if !comparable(lk, rk) {
		return storage.KindInvalid, fmt.Errorf("expr: cannot compare %v with %v in %s", lk, rk, c)
	}
	c.lk = promote(lk, rk)
	return storage.KindBool, nil
}

// timeLayouts are the accepted timestamp literal formats.
var timeLayouts = []string{
	"2006-01-02T15:04:05.000",
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05",
	"2006-01-02",
}

func coerceTimeConst(k *Const) error {
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, k.S); err == nil {
			k.K = storage.KindTime
			k.I = t.UnixNano()
			return nil
		}
	}
	return fmt.Errorf("expr: %q is not a timestamp literal", k.S)
}

func comparable(a, b storage.Kind) bool {
	if a == b {
		return true
	}
	num := func(k storage.Kind) bool { return k == storage.KindInt64 || k == storage.KindFloat64 }
	if num(a) && num(b) {
		return true
	}
	tm := func(k storage.Kind) bool { return k == storage.KindTime || k == storage.KindInt64 }
	return tm(a) && tm(b)
}

func promote(a, b storage.Kind) storage.Kind {
	if a == b {
		return a
	}
	if a == storage.KindFloat64 || b == storage.KindFloat64 {
		return storage.KindFloat64
	}
	if a == storage.KindTime || b == storage.KindTime {
		return storage.KindTime
	}
	return a
}

// Eval implements Expr.
func (c *Cmp) Eval(b *storage.Batch) storage.Column {
	l := c.L.Eval(b)
	r := c.R.Eval(b)
	n := b.Len()
	out := make([]bool, n)
	switch c.lk {
	case storage.KindFloat64:
		lv, rv := asFloats(l), asFloats(r)
		cmpLoop(out, c.Op, lv, rv)
	case storage.KindInt64, storage.KindTime:
		lv, rv := storage.Int64s(l), storage.Int64s(r)
		cmpLoop(out, c.Op, lv, rv)
	case storage.KindBool:
		lv, rv := storage.Bools(l), storage.Bools(r)
		for i := range out {
			switch c.Op {
			case EQ:
				out[i] = lv[i] == rv[i]
			case NE:
				out[i] = lv[i] != rv[i]
			default:
				panic("expr: ordered comparison on booleans")
			}
		}
	case storage.KindString:
		ls, rs := l.(*storage.StringColumn), r.(*storage.StringColumn)
		// Fast path: equality against a constant collapses to a
		// dictionary code comparison.
		if rc, ok := c.R.(*Const); ok && (c.Op == EQ || c.Op == NE) {
			code := ls.Lookup(rc.S)
			for i := range out {
				eq := ls.Code(i) == code && code >= 0
				if c.Op == EQ {
					out[i] = eq
				} else {
					out[i] = !eq
				}
			}
			break
		}
		for i := range out {
			a, bb := ls.Value(i), rs.Value(i)
			switch c.Op {
			case EQ:
				out[i] = a == bb
			case NE:
				out[i] = a != bb
			case LT:
				out[i] = a < bb
			case LE:
				out[i] = a <= bb
			case GT:
				out[i] = a > bb
			case GE:
				out[i] = a >= bb
			}
		}
	default:
		panic(fmt.Sprintf("expr: Eval cmp on %v", c.lk))
	}
	return storage.NewBoolColumn(out)
}

func cmpLoop[T int64 | float64](out []bool, op CmpOp, l, r []T) {
	switch op {
	case EQ:
		for i := range out {
			out[i] = l[i] == r[i]
		}
	case NE:
		for i := range out {
			out[i] = l[i] != r[i]
		}
	case LT:
		for i := range out {
			out[i] = l[i] < r[i]
		}
	case LE:
		for i := range out {
			out[i] = l[i] <= r[i]
		}
	case GT:
		for i := range out {
			out[i] = l[i] > r[i]
		}
	case GE:
		for i := range out {
			out[i] = l[i] >= r[i]
		}
	}
}

func asFloats(c storage.Column) []float64 {
	switch c := c.(type) {
	case *storage.Float64Column:
		return storage.Float64s(c)
	default:
		iv := storage.Int64s(c)
		out := make([]float64, len(iv))
		for i, v := range iv {
			out[i] = float64(v)
		}
		return out
	}
}

// Walk implements Expr.
func (c *Cmp) Walk(fn func(Expr)) {
	fn(c)
	c.L.Walk(fn)
	c.R.Walk(fn)
}

// And is the conjunction of its operands.
type And struct{ L, R Expr }

// NewAnd conjoins l and r.
func NewAnd(l, r Expr) *And { return &And{L: l, R: r} }

// String implements Expr.
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Bind implements Expr.
func (a *And) Bind(names []string, kinds []storage.Kind) (storage.Kind, error) {
	return bindLogic("AND", a.L, a.R, names, kinds)
}

// Eval implements Expr. The right operand is skipped when the left
// already decides every row (all false), and the operand columns are
// reused unchanged in the degenerate cases, avoiding the output
// allocation.
func (a *And) Eval(b *storage.Batch) storage.Column {
	lc := a.L.Eval(b)
	l := storage.Bools(lc)
	anyTrue, anyFalse := boolSummary(l)
	if !anyTrue {
		return lc
	}
	if !anyFalse {
		return a.R.Eval(b)
	}
	r := storage.Bools(a.R.Eval(b))
	out := make([]bool, len(l))
	for i := range out {
		out[i] = l[i] && r[i]
	}
	return storage.NewBoolColumn(out)
}

// boolSummary reports whether vals contains any true and any false,
// bailing out as soon as both are seen so mixed batches pay O(1), not
// an extra full pass.
func boolSummary(vals []bool) (anyTrue, anyFalse bool) {
	for _, v := range vals {
		if v {
			anyTrue = true
		} else {
			anyFalse = true
		}
		if anyTrue && anyFalse {
			return
		}
	}
	return
}

// Walk implements Expr.
func (a *And) Walk(fn func(Expr)) {
	fn(a)
	a.L.Walk(fn)
	a.R.Walk(fn)
}

// Or is the disjunction of its operands.
type Or struct{ L, R Expr }

// NewOr disjoins l and r.
func NewOr(l, r Expr) *Or { return &Or{L: l, R: r} }

// String implements Expr.
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Bind implements Expr.
func (o *Or) Bind(names []string, kinds []storage.Kind) (storage.Kind, error) {
	return bindLogic("OR", o.L, o.R, names, kinds)
}

// Eval implements Expr. The right operand is skipped when the left
// already accepts every row.
func (o *Or) Eval(b *storage.Batch) storage.Column {
	lc := o.L.Eval(b)
	l := storage.Bools(lc)
	anyTrue, anyFalse := boolSummary(l)
	if !anyFalse {
		return lc
	}
	if !anyTrue {
		return o.R.Eval(b)
	}
	r := storage.Bools(o.R.Eval(b))
	out := make([]bool, len(l))
	for i := range out {
		out[i] = l[i] || r[i]
	}
	return storage.NewBoolColumn(out)
}

// Walk implements Expr.
func (o *Or) Walk(fn func(Expr)) {
	fn(o)
	o.L.Walk(fn)
	o.R.Walk(fn)
}

func bindLogic(op string, l, r Expr, names []string, kinds []storage.Kind) (storage.Kind, error) {
	lk, err := l.Bind(names, kinds)
	if err != nil {
		return storage.KindInvalid, err
	}
	rk, err := r.Bind(names, kinds)
	if err != nil {
		return storage.KindInvalid, err
	}
	if lk != storage.KindBool || rk != storage.KindBool {
		return storage.KindInvalid, fmt.Errorf("expr: %s needs boolean operands, got %v and %v", op, lk, rk)
	}
	return storage.KindBool, nil
}

// Not negates its operand.
type Not struct{ E Expr }

// NewNot negates e.
func NewNot(e Expr) *Not { return &Not{E: e} }

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// Bind implements Expr.
func (n *Not) Bind(names []string, kinds []storage.Kind) (storage.Kind, error) {
	k, err := n.E.Bind(names, kinds)
	if err != nil {
		return storage.KindInvalid, err
	}
	if k != storage.KindBool {
		return storage.KindInvalid, fmt.Errorf("expr: NOT needs a boolean operand, got %v", k)
	}
	return storage.KindBool, nil
}

// Eval implements Expr.
func (n *Not) Eval(b *storage.Batch) storage.Column {
	v := storage.Bools(n.E.Eval(b))
	out := make([]bool, len(v))
	for i := range out {
		out[i] = !v[i]
	}
	return storage.NewBoolColumn(out)
}

// Walk implements Expr.
func (n *Not) Walk(fn func(Expr)) {
	fn(n)
	n.E.Walk(fn)
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Expr
	k    storage.Kind
}

// NewArith returns l op r.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// String implements Expr.
func (a *Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Bind implements Expr.
func (a *Arith) Bind(names []string, kinds []storage.Kind) (storage.Kind, error) {
	lk, err := a.L.Bind(names, kinds)
	if err != nil {
		return storage.KindInvalid, err
	}
	rk, err := a.R.Bind(names, kinds)
	if err != nil {
		return storage.KindInvalid, err
	}
	num := func(k storage.Kind) bool { return k == storage.KindInt64 || k == storage.KindFloat64 }
	if !num(lk) || !num(rk) {
		return storage.KindInvalid, fmt.Errorf("expr: arithmetic needs numeric operands, got %v and %v", lk, rk)
	}
	a.k = promote(lk, rk)
	if a.Op == Div {
		a.k = storage.KindFloat64
	}
	return a.k, nil
}

// Eval implements Expr.
func (a *Arith) Eval(b *storage.Batch) storage.Column {
	if a.k == storage.KindFloat64 {
		l, r := asFloats(a.L.Eval(b)), asFloats(a.R.Eval(b))
		out := make([]float64, len(l))
		switch a.Op {
		case Add:
			for i := range out {
				out[i] = l[i] + r[i]
			}
		case Sub:
			for i := range out {
				out[i] = l[i] - r[i]
			}
		case Mul:
			for i := range out {
				out[i] = l[i] * r[i]
			}
		case Div:
			for i := range out {
				out[i] = l[i] / r[i]
			}
		}
		return storage.NewFloat64Column(out)
	}
	l, r := storage.Int64s(a.L.Eval(b)), storage.Int64s(a.R.Eval(b))
	out := make([]int64, len(l))
	switch a.Op {
	case Add:
		for i := range out {
			out[i] = l[i] + r[i]
		}
	case Sub:
		for i := range out {
			out[i] = l[i] - r[i]
		}
	case Mul:
		for i := range out {
			out[i] = l[i] * r[i]
		}
	}
	return storage.NewInt64Column(out)
}

// Walk implements Expr.
func (a *Arith) Walk(fn func(Expr)) {
	fn(a)
	a.L.Walk(fn)
	a.R.Walk(fn)
}
