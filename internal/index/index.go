// Package index provides the access-path accelerators of the eager
// loading variants: hash indexes on key columns, foreign-key join
// indexes (the paper's eager_index investment — "constructing the join
// index is actually computing the join itself"), and per-chunk zone
// maps.
package index

import (
	"fmt"

	"sommelier/internal/storage"
)

// Key is a hashable composite key over up to three int64-encodable
// values plus up to two strings; it covers every primary and join key
// in the seismology schema (including the three-part sample-to-window
// join of the windowdataview: file, segment and window timestamp).
type Key struct {
	I0, I1, I2 int64
	S0, S1     string
}

// HashIndex maps key values of a relation to row numbers (positions in
// the flattened relation). Alongside the hash table it keeps min/max
// bounds of the integer key slots over every inserted key — a zone map
// over the key space — so a Lookup outside the bounds is rejected
// before hashing the (string-carrying) composite key.
type HashIndex struct {
	cols []int
	rows map[Key][]int32
	// loI/hiI bound the I0..I2 slots of all inserted keys; unused slots
	// are zero on both the inserted and the probed side, so they never
	// cause a false rejection.
	loI, hiI [3]int64
}

// KeyAt extracts the composite key of row r from the given columns of
// the batch. It is shared with the execution engine's hash join and
// group-by, which use the same composite-key scheme.
func KeyAt(b *storage.Batch, cols []int, r int) (Key, error) { return keyAt(b, cols, r) }

// keyAt extracts the composite key of row r from the given columns.
func keyAt(b *storage.Batch, cols []int, r int) (Key, error) {
	var k Key
	iSlot, sSlot := 0, 0
	for _, ci := range cols {
		switch c := b.Cols[ci].(type) {
		case *storage.Int64Column:
			if err := k.setInt(&iSlot, c.Value(r)); err != nil {
				return k, err
			}
		case *storage.TimeColumn:
			if err := k.setInt(&iSlot, c.Value(r)); err != nil {
				return k, err
			}
		case *storage.StringColumn:
			if err := k.setStr(&sSlot, c.Value(r)); err != nil {
				return k, err
			}
		default:
			return k, fmt.Errorf("index: unsupported key column type %T", c)
		}
	}
	return k, nil
}

func (k *Key) setInt(slot *int, v int64) error {
	switch *slot {
	case 0:
		k.I0 = v
	case 1:
		k.I1 = v
	case 2:
		k.I2 = v
	default:
		return fmt.Errorf("index: more than three integer key parts")
	}
	*slot++
	return nil
}

func (k *Key) setStr(slot *int, v string) error {
	switch *slot {
	case 0:
		k.S0 = v
	case 1:
		k.S1 = v
	default:
		return fmt.Errorf("index: more than two string key parts")
	}
	*slot++
	return nil
}

// BuildHash builds a hash index over the given column positions of the
// flattened batch.
func BuildHash(b *storage.Batch, cols []int) (*HashIndex, error) {
	idx := &HashIndex{cols: cols, rows: make(map[Key][]int32, b.Len())}
	n := b.Len()
	for r := 0; r < n; r++ {
		k, err := keyAt(b, cols, r)
		if err != nil {
			return nil, err
		}
		ki := [3]int64{k.I0, k.I1, k.I2}
		if len(idx.rows) == 0 {
			idx.loI, idx.hiI = ki, ki
		} else {
			for s, v := range ki {
				if v < idx.loI[s] {
					idx.loI[s] = v
				}
				if v > idx.hiI[s] {
					idx.hiI[s] = v
				}
			}
		}
		idx.rows[k] = append(idx.rows[k], int32(r))
	}
	return idx, nil
}

// Lookup returns the row numbers with the given key. Keys whose integer
// slots fall outside the indexed bounds are rejected without hashing —
// the common shape of a point query probing a time outside the indexed
// range.
func (ix *HashIndex) Lookup(k Key) []int32 {
	if len(ix.rows) == 0 {
		return nil
	}
	if k.I0 < ix.loI[0] || k.I0 > ix.hiI[0] ||
		k.I1 < ix.loI[1] || k.I1 > ix.hiI[1] ||
		k.I2 < ix.loI[2] || k.I2 > ix.hiI[2] {
		return nil
	}
	return ix.rows[k]
}

// Len reports the number of distinct keys.
func (ix *HashIndex) Len() int { return len(ix.rows) }

// MemSize estimates the index footprint in bytes.
func (ix *HashIndex) MemSize() int64 {
	var n int64
	for k, v := range ix.rows {
		n += 48 + int64(len(k.S0)+len(k.S1)) + int64(len(v))*4
	}
	return n
}

// JoinIndex is a precomputed foreign-key join: for every row of the
// referencing (fact) side it records the row number of the matching
// referenced (dimension) row, or -1 for a dangling key.
type JoinIndex struct {
	to []int32
}

// BuildJoin builds the join index from the fact key column to the
// dimension key column. Both must be int64-valued (system-generated
// keys, as the paper assumes).
func BuildJoin(fact storage.Column, dim storage.Column) (*JoinIndex, error) {
	dimVals := storage.Int64s(dim)
	pos := make(map[int64]int32, len(dimVals))
	for i, v := range dimVals {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("index: duplicate dimension key %d", v)
		}
		pos[v] = int32(i)
	}
	factVals := storage.Int64s(fact)
	to := make([]int32, len(factVals))
	for i, v := range factVals {
		if p, ok := pos[v]; ok {
			to[i] = p
		} else {
			to[i] = -1
		}
	}
	return &JoinIndex{to: to}, nil
}

// Map returns the dimension row for the given fact row, or -1.
func (ix *JoinIndex) Map(factRow int32) int32 { return ix.to[factRow] }

// Len reports the number of fact rows covered.
func (ix *JoinIndex) Len() int { return len(ix.to) }

// MemSize estimates the index footprint in bytes.
func (ix *JoinIndex) MemSize() int64 { return int64(len(ix.to)) * 4 }

// ZoneMap holds per-chunk min/max bounds of one numeric or time column,
// enabling chunk pruning without reading data. Ok marks that the
// bounds are valid; a zone over an unsupported column kind carries
// Ok=false and never prunes (fail-open, where pruning on a bogus
// [0,0] bound would silently drop rows).
type ZoneMap struct {
	Min, Max int64
	Rows     int
	Ok       bool
}

// BuildZoneMap computes the bounds of an int64/time column through the
// shared storage.ColumnZone routine (the same one behind the
// relation's batch-level zone maps, so chunk- and batch-level pruning
// cannot diverge).
func BuildZoneMap(c storage.Column) ZoneMap {
	zm := ZoneMap{Rows: c.Len()}
	if z := storage.ColumnZone(c); z.Ok {
		zm.Min, zm.Max, zm.Ok = z.Min, z.Max, true
	}
	return zm
}

// MayContainRange reports whether [lo, hi] intersects the zone: the
// negation of storage.Zone.Disjoint, plus the empty-zone guard. An
// invalid zone over non-empty data conservatively reports true.
func (z ZoneMap) MayContainRange(lo, hi int64) bool {
	if z.Rows == 0 {
		return false
	}
	return !(storage.Zone{Min: z.Min, Max: z.Max, Ok: z.Ok}).Disjoint(lo, hi)
}
