package index

import (
	"testing"
	"testing/quick"

	"sommelier/internal/storage"
)

func TestHashIndexSingleColumn(t *testing.T) {
	b := storage.NewBatch(
		storage.NewInt64Column([]int64{10, 20, 10, 30}),
		storage.NewStringColumn([]string{"a", "b", "c", "d"}),
	)
	ix, err := BuildHash(b, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("distinct keys = %d", ix.Len())
	}
	rows := ix.Lookup(Key{I0: 10})
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if got := ix.Lookup(Key{I0: 99}); got != nil {
		t.Fatalf("phantom rows = %v", got)
	}
	if ix.MemSize() <= 0 {
		t.Fatal("memsize")
	}
}

func TestHashIndexComposite(t *testing.T) {
	b := storage.NewBatch(
		storage.NewStringColumn([]string{"FIAM", "FIAM", "ISK"}),
		storage.NewStringColumn([]string{"HHZ", "BHE", "HHZ"}),
		storage.NewTimeColumn([]int64{100, 100, 100}),
	)
	ix, err := BuildHash(b, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := ix.Lookup(Key{S0: "FIAM", S1: "HHZ", I0: 100})
	if len(rows) != 1 || rows[0] != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashIndexTooManyParts(t *testing.T) {
	b := storage.NewBatch(
		storage.NewInt64Column([]int64{1}),
		storage.NewInt64Column([]int64{2}),
		storage.NewInt64Column([]int64{3}),
		storage.NewInt64Column([]int64{4}),
	)
	if _, err := BuildHash(b, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("four integer parts should be rejected")
	}
	bb := storage.NewBatch(storage.NewFloat64Column([]float64{1}))
	if _, err := BuildHash(bb, []int{0}); err == nil {
		t.Fatal("float key should be rejected")
	}
}

func TestJoinIndex(t *testing.T) {
	dim := storage.NewInt64Column([]int64{100, 200, 300})
	fact := storage.NewInt64Column([]int64{300, 100, 100, 999})
	ix, err := BuildJoin(fact, dim)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 4 {
		t.Fatalf("len = %d", ix.Len())
	}
	want := []int32{2, 0, 0, -1}
	for i, w := range want {
		if got := ix.Map(int32(i)); got != w {
			t.Fatalf("map(%d) = %d, want %d", i, got, w)
		}
	}
	if ix.MemSize() != 16 {
		t.Fatalf("memsize = %d", ix.MemSize())
	}
	// Duplicate dimension keys are invalid.
	if _, err := BuildJoin(fact, storage.NewInt64Column([]int64{1, 1})); err == nil {
		t.Fatal("duplicate dimension keys accepted")
	}
}

func TestZoneMap(t *testing.T) {
	zm := BuildZoneMap(storage.NewInt64Column([]int64{5, -3, 12, 7}))
	if zm.Min != -3 || zm.Max != 12 || zm.Rows != 4 {
		t.Fatalf("zm = %+v", zm)
	}
	if !zm.MayContainRange(0, 1) || !zm.MayContainRange(12, 20) {
		t.Fatal("overlapping ranges rejected")
	}
	if zm.MayContainRange(13, 20) || zm.MayContainRange(-10, -4) {
		t.Fatal("disjoint ranges accepted")
	}
	empty := BuildZoneMap(storage.NewInt64Column(nil))
	if empty.MayContainRange(-1<<62, 1<<62) {
		t.Fatal("empty zone map matched")
	}
}

// Property: the join index agrees with a nested-loop oracle.
func TestQuickJoinIndexOracle(t *testing.T) {
	f := func(dimKeys []int64, factPick []uint8) bool {
		// Dedup dimension keys.
		seen := make(map[int64]bool)
		dims := dimKeys[:0:0]
		for _, k := range dimKeys {
			if !seen[k] {
				seen[k] = true
				dims = append(dims, k)
			}
		}
		if len(dims) == 0 {
			return true
		}
		facts := make([]int64, len(factPick))
		for i, p := range factPick {
			facts[i] = dims[int(p)%len(dims)]
		}
		ix, err := BuildJoin(storage.NewInt64Column(facts), storage.NewInt64Column(dims))
		if err != nil {
			return false
		}
		for i, fv := range facts {
			j := ix.Map(int32(i))
			if j < 0 || dims[j] != fv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
