package experiments

import (
	"fmt"
	"strings"
	"time"
)

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// RenderTableII formats Table II in the paper's layout.
func RenderTableII(rows []DatasetRow) string {
	var sb strings.Builder
	sb.WriteString("TABLE II — DATASET\n")
	sb.WriteString(fmt.Sprintf("%-8s %-10s %10s %10s %14s\n", "sf", "data of", "files", "segments", "data records"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-8s %-10s %10d %10d %14d\n",
			fmt.Sprintf("sf-%d", r.SF), fmt.Sprintf("%d days", r.Days), r.Files, r.Segments, r.DataRecords))
	}
	return sb.String()
}

// RenderTableIII formats Table III in the paper's layout.
func RenderTableIII(rows []SizeRow) string {
	var sb strings.Builder
	sb.WriteString("TABLE III — DATASET SIZES\n")
	sb.WriteString(fmt.Sprintf("%-8s %12s %12s %12s %12s %12s\n", "sf", "mSEED", "CSV", "DB", "+keys", "Lazy"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-8s %12s %12s %12s %12s %12s\n",
			fmt.Sprintf("sf-%d", r.SF), fmtBytes(r.MseedBytes), fmtBytes(r.CSVBytes),
			fmtBytes(r.DBBytes), fmtBytes(r.DBKeysBytes), fmtBytes(r.LazyBytes)))
	}
	return sb.String()
}

// RenderFig6 formats the loading cost breakdown.
func RenderFig6(rows []LoadingRow) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 6 — LOADING COST BREAKDOWN\n")
	sb.WriteString(fmt.Sprintf("%-8s %-12s %10s %12s %10s %10s %10s %10s %12s\n",
		"sf", "approach", "metadata", "mSEED→CSV", "CSV→DB", "mSEED→DB", "indexing", "DMd", "total"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-8s %-12s %10s %12s %10s %10s %10s %10s %12s\n",
			fmt.Sprintf("sf-%d", r.SF), r.Approach, fmtDur(r.Metadata), fmtDur(r.MseedToCSV),
			fmtDur(r.CSVToDB), fmtDur(r.MseedToDB), fmtDur(r.Indexing), fmtDur(r.DMdDerivation),
			fmtDur(r.Total)))
	}
	return sb.String()
}

// RenderFig7 formats single-query performance per query type.
func RenderFig7(rows []QueryPerfRow) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 7 — SINGLE QUERY PERFORMANCE (COLD / HOT)\n")
	sb.WriteString(fmt.Sprintf("%-6s %-8s %-12s %12s %12s\n", "query", "sf", "approach", "cold", "hot"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-6s %-8s %-12s %12s %12s\n",
			fmt.Sprintf("T%d", r.QueryType), fmt.Sprintf("sf-%d", r.SF), r.Approach,
			fmtDur(r.Cold), fmtDur(r.Hot)))
	}
	return sb.String()
}

// RenderFig8 formats data-to-insight times per selectivity level.
func RenderFig8(rows []InsightRow) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 8 — DATA-TO-INSIGHT TIME VS QUERY SELECTIVITY (FIAM)\n")
	sb.WriteString(fmt.Sprintf("%-6s %-8s %-12s %6s %12s %12s %12s\n",
		"query", "sf", "approach", "sel%", "prep", "first query", "total"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-6s %-8s %-12s %6d %12s %12s %12s\n",
			fmt.Sprintf("T%d", r.QueryType), fmt.Sprintf("sf-%d", r.SF), r.Approach,
			r.SelectivityPct, fmtDur(r.Prep), fmtDur(r.FirstQuery), fmtDur(r.Total())))
	}
	return sb.String()
}

// RenderFig9 formats cumulative workload times.
func RenderFig9(rows []WorkloadRow) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 9 — WORKLOAD PERFORMANCE VS WORKLOAD SELECTIVITY (FIAM)\n")
	sb.WriteString(fmt.Sprintf("%-6s %-8s %-12s %6s %8s %12s %12s %12s\n",
		"query", "sf", "approach", "wsel%", "queries", "prep", "workload", "cumulative"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-6s %-8s %-12s %6d %8d %12s %12s %12s\n",
			fmt.Sprintf("T%d", r.QueryType), fmt.Sprintf("sf-%d", r.SF), r.Approach,
			r.WorkloadSelPct, r.NQueries, fmtDur(r.Prep), fmtDur(r.Workload), fmtDur(r.Cumulative())))
	}
	return sb.String()
}

// RenderAblations formats the three ablation studies.
func RenderAblations(par []ParallelLoadRow, pol []CachePolicyRow, rules []JoinRuleRow) string {
	var sb strings.Builder
	sb.WriteString("ABLATION — PARALLEL VS SERIAL LAZY INGESTION\n")
	for _, r := range par {
		mode := "all cores"
		if r.MaxParallel == 1 {
			mode = "serial"
		}
		sb.WriteString(fmt.Sprintf("  sf-%-4d %-10s %4d chunks  %12s\n", r.SF, mode, r.Chunks, fmtDur(r.QueryTime)))
	}
	sb.WriteString("ABLATION — RECYCLER POLICY UNDER SKEWED REUSE\n")
	for _, r := range pol {
		sb.WriteString(fmt.Sprintf("  %-12s hits=%-6d misses=%-6d evictions=%-6d %12s\n",
			r.Policy, r.Hits, r.Misses, r.Evictions, fmtDur(r.Total)))
	}
	sb.WriteString("ABLATION — JOIN RULES R1–R4: CHUNKS TOUCHED\n")
	for _, r := range rules {
		sb.WriteString(fmt.Sprintf("  %-28s with rules: %d   without: %d\n", r.Query, r.WithRules, r.WithoutRules))
	}
	return sb.String()
}
