package experiments

import (
	"strings"
	"testing"

	"sommelier/internal/registrar"
)

func tiny(t *testing.T) Config {
	t.Helper()
	return TinyConfig(t.TempDir())
}

// shape returns a configuration with enough per-chunk volume that the
// metadata/actual-data cost asymmetry is visible (the tiny config's
// 300-sample files are dominated by per-file constant costs).
func shape(t *testing.T) Config {
	t.Helper()
	cfg := TinyConfig(t.TempDir())
	cfg.ScaleFactors = []int{1}
	cfg.SamplesPerFile = 30000
	return cfg
}

func TestTableII(t *testing.T) {
	cfg := tiny(t)
	rows, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The 1:3 scale shape must hold exactly for files.
	if rows[1].Files != 3*rows[0].Files {
		t.Fatalf("files: %d vs %d", rows[0].Files, rows[1].Files)
	}
	if rows[1].DataRecords != 3*rows[0].DataRecords {
		t.Fatalf("records: %d vs %d", rows[0].DataRecords, rows[1].DataRecords)
	}
	if rows[0].Segments <= rows[0].Files {
		t.Fatal("multiple segments per file expected")
	}
	out := RenderTableII(rows)
	if !strings.Contains(out, "sf-1") || !strings.Contains(out, "sf-3") {
		t.Fatalf("render:\n%s", out)
	}
	// Repo reuse: a second call regenerates the manifest consistently.
	rows2, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows2[0] != rows[0] {
		t.Fatalf("manifest not reproducible: %+v vs %+v", rows2[0], rows[0])
	}
}

func TestTableIIIShapes(t *testing.T) {
	cfg := tiny(t)
	cfg.ScaleFactors = []int{1}
	rows, err := TableIII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The paper's Table III shape: CSV ≫ DB ≫ mSEED ≫ lazy metadata.
	if !(r.CSVBytes > r.DBBytes/2) {
		t.Fatalf("CSV %d not large vs DB %d", r.CSVBytes, r.DBBytes)
	}
	if !(r.DBBytes > r.MseedBytes) {
		t.Fatalf("DB %d not larger than mSEED %d (decompression blow-up missing)", r.DBBytes, r.MseedBytes)
	}
	if !(r.LazyBytes < r.MseedBytes) {
		t.Fatalf("lazy %d not small vs mSEED %d", r.LazyBytes, r.MseedBytes)
	}
	if r.DBKeysBytes <= r.DBBytes-r.CSVBytes && r.DBKeysBytes == 0 {
		t.Fatal("indexed size missing")
	}
	_ = RenderTableIII(rows)
}

func TestFig6Shapes(t *testing.T) {
	cfg := shape(t)
	rows, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[registrar.Approach]LoadingRow{}
	for _, r := range rows {
		byApp[r.Approach] = r
	}
	lazy := byApp[registrar.Lazy].Total
	for _, app := range []registrar.Approach{registrar.EagerCSV, registrar.EagerPlain, registrar.EagerIndex, registrar.EagerDMd} {
		if byApp[app].Total <= lazy {
			t.Errorf("%s total %v not above lazy %v", app, byApp[app].Total, lazy)
		}
	}
	// eager_csv pays the serialization detour that eager_plain avoids.
	if byApp[registrar.EagerCSV].MseedToCSV <= 0 || byApp[registrar.EagerCSV].CSVToDB <= 0 {
		t.Fatal("eager_csv cost components missing")
	}
	if byApp[registrar.EagerPlain].MseedToCSV != 0 {
		t.Fatal("eager_plain should not serialize CSV")
	}
	if byApp[registrar.EagerIndex].Indexing <= 0 {
		t.Fatal("eager_index indexing cost missing")
	}
	if byApp[registrar.EagerDMd].DMdDerivation <= 0 {
		t.Fatal("eager_dmd derivation cost missing")
	}
	_ = RenderFig6(rows)
}

func TestFig7Runs(t *testing.T) {
	cfg := tiny(t)
	cfg.ScaleFactors = []int{1}
	rows, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 query types × 4 approaches.
	if len(rows) != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cold <= 0 || r.Hot <= 0 {
			t.Fatalf("timings missing: %+v", r)
		}
		if r.Hot > r.Cold*100 {
			t.Fatalf("hot wildly slower than cold: %+v", r)
		}
	}
	_ = RenderFig7(rows)
}

func TestFig8Shapes(t *testing.T) {
	cfg := shape(t)
	cfg.Selectivities = []int{0, 100}
	rows, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 sf × 2 query types × 4 approaches × 2 selectivities.
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SelectivityPct == 0 && r.FirstQuery != 0 {
			t.Fatalf("0%% selectivity ran a query: %+v", r)
		}
		if r.SelectivityPct == 100 && r.FirstQuery <= 0 {
			t.Fatalf("100%% selectivity query missing: %+v", r)
		}
	}
	// Lazy preparation must beat every eager preparation.
	prep := map[registrar.Approach]int64{}
	for _, r := range rows {
		if r.SelectivityPct == 0 && r.QueryType == 4 {
			prep[r.Approach] = int64(r.Prep)
		}
	}
	for app, p := range prep {
		if app != registrar.Lazy && p <= prep[registrar.Lazy] {
			t.Errorf("%s prep %d not above lazy %d", app, p, prep[registrar.Lazy])
		}
	}
	_ = RenderFig8(rows)
}

func TestFig9Runs(t *testing.T) {
	cfg := tiny(t)
	cfg.ScaleFactors = []int{1}
	cfg.Selectivities = []int{0, 100}
	cfg.WorkloadSizes = []int{3}
	rows, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 sf × 2 qt × 2 approaches × 2 wsel × 1 n.
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WorkloadSelPct == 100 && r.Workload <= 0 {
			t.Fatalf("workload missing: %+v", r)
		}
	}
	_ = RenderFig9(rows)
}

func TestAblations(t *testing.T) {
	cfg := tiny(t)
	par, err := AblationParallelLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != 2 || par[0].Chunks != par[1].Chunks {
		t.Fatalf("parallel rows = %+v", par)
	}
	pol, err := AblationCachePolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol) != 2 {
		t.Fatalf("policy rows = %d", len(pol))
	}
	for _, r := range pol {
		if r.Hits+r.Misses == 0 {
			t.Fatalf("no cache traffic: %+v", r)
		}
	}
	rules, err := AblationJoinRules(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].WithRules >= rules[0].WithoutRules {
		t.Fatalf("rules do not reduce chunks: %+v", rules[0])
	}
	_ = RenderAblations(par, pol, rules)
}

func TestRangeFor(t *testing.T) {
	lo, hi := rangeFor(0, 1000, 10, 25)
	if lo != 100 || hi != 350 {
		t.Fatalf("range = [%d, %d)", lo, hi)
	}
	_, hi = rangeFor(0, 1000, 90, 25)
	if hi != 1000 {
		t.Fatalf("clamped hi = %d", hi)
	}
}

func TestQueryOfTypePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	queryOfType(9, "FIAM", 0, 1)
}

func TestConcurrentLoad(t *testing.T) {
	cfg := tiny(t)
	rows, err := ConcurrentLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(registrar.Approaches()) * len(ConcurrencyClientCounts)
	if len(rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.QPS <= 0 || r.Queries == 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
	out := RenderConcurrency(rows)
	if !strings.Contains(out, "lazy") || !strings.Contains(out, "16") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestOverloadChecks(t *testing.T) {
	rep := &OverloadReport{
		UnloadedQPS:   100,
		UnloadedP99US: 1000,
		Phases: []OverloadPhase{
			{Name: "load_0.5x", Multiplier: 0.5, GoodputQPS: 100, AdmittedP99US: 1000},
			{Name: "load_4x", Multiplier: 4, GoodputQPS: 150, AdmittedP99US: 1800},
		},
	}
	for _, ck := range overloadChecks(rep) {
		if !ck.Pass {
			t.Fatalf("healthy report failed check %+v", ck)
		}
	}

	collapsed := &OverloadReport{
		UnloadedQPS:   100,
		UnloadedP99US: 1000,
		Phases: []OverloadPhase{
			{Name: "load_0.5x", Multiplier: 0.5, GoodputQPS: 100, AdmittedP99US: 1000},
			{Name: "load_4x", Multiplier: 4, GoodputQPS: 40, AdmittedP99US: 5000, Errors: 2},
		},
	}
	var failed int
	for _, ck := range overloadChecks(collapsed) {
		if !ck.Pass {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("collapsed report failed %d of 3 checks", failed)
	}

	collapsed.Checks = overloadChecks(collapsed)
	out := RenderOverload(collapsed)
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "load_4x") {
		t.Fatalf("render missing verdicts:\n%s", out)
	}
}
