package experiments

import (
	"fmt"
	"time"
)

// fmtTS renders a nanosecond timestamp as a SQL literal.
func fmtTS(ns int64) string {
	return time.Unix(0, ns).UTC().Format("2006-01-02T15:04:05.000")
}

// Representative queries for the five types of Table I, parameterized
// by station and time range — "each type of query selects 2 days of
// data from one station" in the paper's §VI-C; the range is widened for
// the selectivity sweeps.

// queryT1 joins GMd tables with a selection on station.
func queryT1(station string) string {
	return fmt.Sprintf(
		`SELECT station, COUNT(*) AS n FROM F WHERE station = '%s' GROUP BY station`, station)
}

// queryT2 refers to the DMd table with selections on station and
// window_start_ts.
func queryT2(station string, from, to int64) string {
	return fmt.Sprintf(`SELECT window_start_ts, window_max_val, window_std_dev FROM H
		WHERE window_station = '%s'
		  AND window_start_ts >= '%s' AND window_start_ts < '%s'`,
		station, fmtTS(from), fmtTS(to))
}

// queryT3 is the T2 query joined with the GMd tables.
func queryT3(station string, from, to int64) string {
	return fmt.Sprintf(`SELECT H.window_start_ts, H.window_max_val FROM windowdataview_md
		WHERE F.station = '%s'
		  AND H.window_start_ts >= '%s' AND H.window_start_ts < '%s'`,
		station, fmtTS(from), fmtTS(to))
}

// queryT4 aggregates actual data joined with GMd, with selections on
// both.
func queryT4(station string, from, to int64) string {
	return fmt.Sprintf(`SELECT AVG(D.sample_value) FROM dataview
		WHERE F.station = '%s' AND D.sample_time >= '%s' AND D.sample_time < '%s'`,
		station, fmtTS(from), fmtTS(to))
}

// queryT5 aggregates actual data joined with GMd and DMd, with
// selections on GMd and DMd but (per §VI-A) not on AD.
func queryT5(station string, from, to int64) string {
	return fmt.Sprintf(`SELECT AVG(D.sample_value) FROM windowdataview
		WHERE F.station = '%s'
		  AND H.window_start_ts >= '%s' AND H.window_start_ts < '%s'
		  AND H.window_max_val > -1000000000`,
		station, fmtTS(from), fmtTS(to))
}

// queryOfType dispatches on the paper's taxonomy.
func queryOfType(qt int, station string, from, to int64) string {
	switch qt {
	case 1:
		return queryT1(station)
	case 2:
		return queryT2(station, from, to)
	case 3:
		return queryT3(station, from, to)
	case 4:
		return queryT4(station, from, to)
	case 5:
		return queryT5(station, from, to)
	default:
		panic(fmt.Sprintf("experiments: no query of type %d", qt))
	}
}

// rangeFor returns the time range covering pct percent of [start, end)
// beginning at offset offPct percent.
func rangeFor(start, end int64, offPct, pct float64) (int64, int64) {
	span := end - start
	lo := start + int64(offPct/100*float64(span))
	hi := lo + int64(pct/100*float64(span))
	if hi > end {
		hi = end
	}
	return lo, hi
}
