package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"sommelier/internal/registrar"
)

// ConcurrencyRow reports the service throughput of one loading approach
// at one client count: the concurrent-load benchmark behind sommelierd.
type ConcurrencyRow struct {
	Approach registrar.Approach
	Clients  int
	Queries  int
	Wall     time.Duration
	// QPS is Queries / Wall.
	QPS float64
	// AvgLatency is the mean per-query latency observed by clients.
	AvgLatency time.Duration
}

// ConcurrencyClientCounts is the sweep the evaluation reports.
var ConcurrencyClientCounts = []int{1, 4, 16}

// ConcurrentLoad measures queries/sec against one shared DB at 1, 4 and
// 16 concurrent clients for each of the five loading approaches. The
// workload is a fixed bag of mixed T1/T2/T4 queries (point, DMd window,
// actual-data range) spread round-robin over the clients, so every
// client count does the same total work and the sweep isolates the
// engine's concurrency behaviour: lock contention, shared chunk
// flights, recycler churn.
func ConcurrentLoad(cfg Config) ([]ConcurrencyRow, error) {
	sf := cfg.ScaleFactors[0]
	dir, _, err := cfg.Repo(sf, false)
	if err != nil {
		return nil, err
	}
	bag := mixedBag(cfg, sf)

	var rows []ConcurrencyRow
	for _, app := range registrar.Approaches() {
		for _, clients := range ConcurrencyClientCounts {
			db, err := openDB(dir, app)
			if err != nil {
				return nil, err
			}
			var (
				wg      sync.WaitGroup
				mu      sync.Mutex
				lat     time.Duration
				runErr  error
				perGoro = make([][]string, clients)
			)
			for i, q := range bag {
				perGoro[i%clients] = append(perGoro[i%clients], q)
			}
			t0 := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(queries []string) {
					defer wg.Done()
					var local time.Duration
					for _, sql := range queries {
						q0 := time.Now()
						res, err := db.QueryContext(context.Background(), sql)
						local += time.Since(q0)
						if err == nil {
							res.Release()
						}
						if err != nil {
							mu.Lock()
							if runErr == nil {
								runErr = err
							}
							mu.Unlock()
							return
						}
					}
					mu.Lock()
					lat += local
					mu.Unlock()
				}(perGoro[c])
			}
			wg.Wait()
			wall := time.Since(t0)
			if runErr != nil {
				return nil, fmt.Errorf("concurrency %s/%d: %w", app, clients, runErr)
			}
			rows = append(rows, ConcurrencyRow{
				Approach:   app,
				Clients:    clients,
				Queries:    len(bag),
				Wall:       wall,
				QPS:        float64(len(bag)) / wall.Seconds(),
				AvgLatency: lat / time.Duration(len(bag)),
			})
		}
	}
	return rows, nil
}

// mixedBag is the fixed 48-query bag of mixed T1/T2/T4 queries (point,
// DMd window, actual-data range) every client count executes: offsets
// cycle within the span, leaving room for the one-day query window (a
// one-day repository pins every query to day 0).
func mixedBag(cfg Config, sf int) []string {
	start, end := cfg.span(sf)
	stations := []string{"FIAM", "ISK", "AQU", "CERA"}
	day := int64(24 * time.Hour)
	span := end - start
	offMod := span - day
	if offMod <= 0 {
		offMod = day
	}
	var bag []string
	for i := 0; i < 48; i++ {
		st := stations[i%len(stations)]
		lo := start + (int64(i)*day/2)%offMod
		switch i % 3 {
		case 0:
			bag = append(bag, queryT1(st))
		case 1:
			bag = append(bag, queryT2(st, lo, lo+day))
		default:
			bag = append(bag, queryT4(st, lo, lo+day))
		}
	}
	return bag
}

// RenderConcurrency formats the concurrent-load sweep.
func RenderConcurrency(rows []ConcurrencyRow) string {
	var sb strings.Builder
	sb.WriteString("CONCURRENT LOAD — QUERIES/SEC vs CLIENTS (fixed 48-query mixed bag)\n")
	sb.WriteString(fmt.Sprintf("%-14s %8s %8s %12s %12s\n", "approach", "clients", "qps", "wall", "avg lat"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-14s %8d %8.1f %12s %12s\n",
			r.Approach, r.Clients, r.QPS, fmtDur(r.Wall), fmtDur(r.AvgLatency)))
	}
	return sb.String()
}
