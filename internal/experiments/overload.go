package experiments

// This file holds the overload-survival dump (`benchrunner
// -overload-json` → BENCH_overload.json): the HTTP service driven past
// its capacity on purpose. A closed-loop pass at the worker count
// estimates capacity, and then open-loop phases offer 0.5×, 1×, 2×
// and 4× that capacity. The 0.5× phase is the unloaded baseline: the
// goodput and admitted latency the service delivers when demand is
// comfortably below capacity, measured with the same pacing harness
// as the overload phases so the checks compare load levels, not
// harness artifacts (a closed-loop single client — kept in the report
// as a reference — shares neither the wave pacing nor its scheduling
// noise, which matters when client and server share one CPU). The
// admission controller
// must shed the excess with 429 + Retry-After while the admitted
// queries stay fast — the collector FAILS (non-zero exit via the
// returned error) unless, under 4× overload, the admitted p99 is
// within 2× the unloaded p99, goodput is at least the unloaded-regime
// throughput (no congestion collapse past the knee), and no request
// saw a 5xx.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"sommelier/internal/registrar"
	"sommelier/internal/server"
)

// OverloadPhase is one offered-load level's view of the service.
type OverloadPhase struct {
	Name string `json:"name"`
	// Multiplier is the offered load as a multiple of measured capacity
	// (0 for the unloaded single-client phase).
	Multiplier float64 `json:"multiplier"`
	// OfferedQPS is the open-loop arrival rate.
	OfferedQPS float64 `json:"offered_qps"`
	Requests   int     `json:"requests"`
	// Admitted counts 200s, Shed counts 429s; anything else is Errors.
	Admitted int `json:"admitted"`
	Shed     int `json:"shed"`
	Errors   int `json:"errors"`
	// GoodputQPS is admitted responses per second of phase wall time.
	GoodputQPS float64 `json:"goodput_qps"`
	// Latency quantiles over admitted (200) responses only — queue wait
	// included, shed requests excluded.
	AdmittedP50US int64 `json:"admitted_p50_us"`
	AdmittedP99US int64 `json:"admitted_p99_us"`
}

// OverloadCheck is one acceptance criterion's verdict, embedded in the
// report so a failing run still leaves the evidence on disk.
type OverloadCheck struct {
	Name   string `json:"name"`
	Detail string `json:"detail"`
	Pass   bool   `json:"pass"`
}

// OverloadReport is the machine-readable overload summary.
type OverloadReport struct {
	GeneratedUnix int64 `json:"generated_unix"`
	GoMaxProcs    int   `json:"gomaxprocs"`
	ScaleFactor   int   `json:"scale_factor"`
	// Workers/QueueDepth are the admission configuration under test
	// (floor = ceiling = Workers, so the phases measure shedding, not
	// limit adaptation).
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// The unloaded baseline is the 0.5× (sub-capacity) open-loop phase:
	// the goodput and admitted latency of the healthy regime, measured
	// with the same pacing harness as the overload phases so the
	// overload checks isolate the effect of load, not of the harness.
	UnloadedQPS   float64 `json:"unloaded_qps"`
	UnloadedP50US int64   `json:"unloaded_p50_us"`
	UnloadedP99US int64   `json:"unloaded_p99_us"`
	// Reference only: one client, closed loop, no pacing.
	SingleClientP50US int64 `json:"single_client_p50_us"`
	SingleClientP99US int64 `json:"single_client_p99_us"`
	// CapacityQPS is the closed-loop throughput at the worker count —
	// the denominator of the overload multipliers.
	CapacityQPS float64         `json:"capacity_qps"`
	Phases      []OverloadPhase `json:"phases"`
	Checks      []OverloadCheck `json:"checks"`
}

// overloadMultipliers are the offered-load levels, as multiples of
// measured capacity. The 0.5× phase is the healthy-regime throughput
// baseline the 4× goodput is judged against.
var overloadMultipliers = []float64{0.5, 1, 2, 4}

// overloadWave is the pacing quantum of the open-loop phases: arrivals
// are released in waves this far apart rather than per-request timers,
// which keeps pacing feasible at tens of thousands of requests/sec.
const overloadWave = 5 * time.Millisecond

// overloadClient drives the server handler in-process (no sockets):
// one ServeHTTP call per request against a recorder, which keeps an
// open-loop burst from being throttled by transport connection limits.
type overloadClient struct {
	h   http.Handler
	bag [][]byte
}

func newOverloadClient(h http.Handler, bag []string) (*overloadClient, error) {
	c := &overloadClient{h: h}
	for _, sql := range bag {
		body, err := json.Marshal(server.QueryRequest{SQL: sql})
		if err != nil {
			return nil, err
		}
		c.bag = append(c.bag, body)
	}
	return c, nil
}

// do issues request i (round-robin over the bag) and returns the
// status code and observed latency.
func (c *overloadClient) do(i int) (int, time.Duration) {
	body := c.bag[i%len(c.bag)]
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	t0 := time.Now()
	c.h.ServeHTTP(rec, req)
	return rec.Code, time.Since(t0)
}

// closedLoop runs `clients` goroutines that each issue requests
// back-to-back until `total` have been sent, and returns the wall
// time plus the sorted admitted latencies in microseconds.
func (c *overloadClient) closedLoop(clients, total int) (time.Duration, []int64, int) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lat  []int64
		errs int
		next int
	)
	t0 := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= total {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				code, d := c.do(i)
				mu.Lock()
				if code == http.StatusOK {
					lat = append(lat, d.Microseconds())
				} else {
					errs++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return wall, lat, errs
}

// openLoop offers `total` requests at `rate` per second regardless of
// how fast the server answers — the hostile-traffic shape: clients do
// not slow down when the server does.
func (c *overloadClient) openLoop(rate float64, total int) OverloadPhase {
	p := OverloadPhase{OfferedQPS: rate, Requests: total}
	perWave := int(rate * overloadWave.Seconds())
	if perWave < 1 {
		perWave = 1
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		lat []int64
	)
	t0 := time.Now()
	for sent := 0; sent < total; {
		n := perWave
		if sent+n > total {
			n = total - sent
		}
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				code, d := c.do(i)
				mu.Lock()
				defer mu.Unlock()
				switch code {
				case http.StatusOK:
					p.Admitted++
					lat = append(lat, d.Microseconds())
				case http.StatusTooManyRequests:
					p.Shed++
				default:
					p.Errors++
				}
			}(sent + i)
		}
		sent += n
		time.Sleep(overloadWave)
	}
	wg.Wait()
	wall := time.Since(t0)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p.GoodputQPS = float64(p.Admitted) / wall.Seconds()
	p.AdmittedP50US = quantileUS(lat, 0.50)
	p.AdmittedP99US = quantileUS(lat, 0.99)
	return p
}

// overloadRequestCap bounds one phase's request count so a fast
// machine (high capacity → high offered rate) still finishes the
// suite in seconds.
const overloadRequestCap = 12000

// CollectOverload measures goodput and admitted latency under 1×, 2×
// and 4× overload at the first scale factor, and verdicts the
// acceptance criteria.
func CollectOverload(cfg Config) (*OverloadReport, error) {
	sf := cfg.ScaleFactors[0]
	dir, _, err := cfg.Repo(sf, false)
	if err != nil {
		return nil, err
	}
	db, err := openDB(dir, registrar.Lazy)
	if err != nil {
		return nil, err
	}
	bag := mixedBag(cfg, sf)

	workers := runtime.GOMAXPROCS(0)
	queueDepth := workers
	if queueDepth < 2 {
		queueDepth = 2
	}
	// Floor = ceiling pins the concurrency limit: the phases then
	// measure the queue + shed behaviour alone, reproducibly, instead
	// of convolving it with AIMD adaptation.
	srv := server.New(db, server.Config{
		Workers:        workers,
		MinWorkers:     workers,
		MaxWorkers:     workers,
		QueueDepth:     queueDepth,
		DefaultTimeout: 30 * time.Second,
	})
	defer srv.Close()
	client, err := newOverloadClient(srv.Handler(), bag)
	if err != nil {
		return nil, err
	}

	rep := &OverloadReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		ScaleFactor:   sf,
		Workers:       workers,
		QueueDepth:    queueDepth,
	}

	// Warm the cache and plan cache so every phase measures execution,
	// not first-touch chunk ingestion.
	if _, _, errs := client.closedLoop(1, len(bag)); errs > 0 {
		return nil, fmt.Errorf("overload warm-up: %d requests failed", errs)
	}

	// Single-client latency reference: one client, closed loop, several
	// rounds.
	_, lat, errs := client.closedLoop(1, 4*len(bag))
	if errs > 0 || len(lat) == 0 {
		return nil, fmt.Errorf("overload single-client phase: %d of %d requests failed", errs, 4*len(bag))
	}
	rep.SingleClientP50US = quantileUS(lat, 0.50)
	rep.SingleClientP99US = quantileUS(lat, 0.99)

	// Capacity: closed loop at the worker count.
	wall, lat, errs := client.closedLoop(workers, 4*len(bag))
	if errs > 0 || len(lat) == 0 {
		return nil, fmt.Errorf("overload capacity phase: %d of %d requests failed", errs, 4*len(bag))
	}
	rep.CapacityQPS = float64(len(lat)) / wall.Seconds()

	for _, mult := range overloadMultipliers {
		rate := mult * rep.CapacityQPS
		total := int(rate) // one second of offered load
		if total > overloadRequestCap {
			total = overloadRequestCap
		}
		if total < 4*len(bag) {
			total = 4 * len(bag)
		}
		p := client.openLoop(rate, total)
		p.Name = fmt.Sprintf("load_%gx", mult)
		p.Multiplier = mult
		rep.Phases = append(rep.Phases, p)
		if mult < 1 {
			rep.UnloadedQPS = p.GoodputQPS
			rep.UnloadedP50US = p.AdmittedP50US
			rep.UnloadedP99US = p.AdmittedP99US
		}
	}

	rep.Checks = overloadChecks(rep)
	for _, ck := range rep.Checks {
		if !ck.Pass {
			return rep, fmt.Errorf("overload acceptance failed: %s (%s)", ck.Name, ck.Detail)
		}
	}
	return rep, nil
}

// overloadChecks verdicts the acceptance criteria against the 4×
// phase: admitted p99 within 2× unloaded p99, goodput at least the
// unloaded-regime throughput, and zero non-retryable errors anywhere.
func overloadChecks(rep *OverloadReport) []OverloadCheck {
	last := rep.Phases[len(rep.Phases)-1]
	var totalErrs int
	for _, p := range rep.Phases {
		totalErrs += p.Errors
	}
	return []OverloadCheck{
		{
			Name: "admitted_p99_bounded",
			Detail: fmt.Sprintf("4x admitted p99 %dus vs 2x unloaded p99 %dus",
				last.AdmittedP99US, 2*rep.UnloadedP99US),
			Pass: last.AdmittedP99US <= 2*rep.UnloadedP99US,
		},
		{
			Name: "goodput_preserved",
			Detail: fmt.Sprintf("4x goodput %.1f qps vs unloaded %.1f qps",
				last.GoodputQPS, rep.UnloadedQPS),
			Pass: last.GoodputQPS >= rep.UnloadedQPS,
		},
		{
			Name:   "no_errors",
			Detail: fmt.Sprintf("%d non-200/429 responses across all phases", totalErrs),
			Pass:   totalErrs == 0,
		},
	}
}

// WriteOverloadJSON collects the overload report and writes it as
// indented JSON to path. The report is written even when the
// acceptance checks fail, so the failing numbers are inspectable; the
// error is still returned so `make bench-json` and CI exit non-zero.
func WriteOverloadJSON(cfg Config, path string) error {
	rep, collectErr := CollectOverload(cfg)
	if rep != nil {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return collectErr
}

// RenderOverload formats the overload report for the console.
func RenderOverload(rep *OverloadReport) string {
	var sb strings.Builder
	sb.WriteString("OVERLOAD — GOODPUT AND ADMITTED LATENCY vs OFFERED LOAD\n")
	sb.WriteString(fmt.Sprintf("unloaded (0.5x): %.1f qps, p50 %dus, p99 %dus; capacity: %.1f qps (workers=%d queue=%d)\n",
		rep.UnloadedQPS, rep.UnloadedP50US, rep.UnloadedP99US, rep.CapacityQPS, rep.Workers, rep.QueueDepth))
	sb.WriteString(fmt.Sprintf("%-14s %10s %10s %8s %8s %8s %12s %12s\n",
		"phase", "offered", "goodput", "admit", "shed", "errors", "p50", "p99"))
	for _, p := range rep.Phases {
		sb.WriteString(fmt.Sprintf("%-14s %10.1f %10.1f %8d %8d %8d %12s %12s\n",
			p.Name, p.OfferedQPS, p.GoodputQPS, p.Admitted, p.Shed, p.Errors,
			fmtDur(time.Duration(p.AdmittedP50US)*time.Microsecond),
			fmtDur(time.Duration(p.AdmittedP99US)*time.Microsecond)))
	}
	for _, ck := range rep.Checks {
		verdict := "PASS"
		if !ck.Pass {
			verdict = "FAIL"
		}
		sb.WriteString(fmt.Sprintf("check %-22s %s (%s)\n", ck.Name, verdict, ck.Detail))
	}
	return sb.String()
}
