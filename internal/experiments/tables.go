package experiments

import (
	"sommelier/internal/registrar"
)

// DatasetRow is one line of Table II.
type DatasetRow struct {
	SF          int
	Days        int
	Files       int
	Segments    int
	DataRecords int64
}

// TableII reports the dataset characteristics per scale factor.
func TableII(cfg Config) ([]DatasetRow, error) {
	var rows []DatasetRow
	for _, sf := range cfg.ScaleFactors {
		_, man, err := cfg.Repo(sf, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DatasetRow{
			SF:          sf,
			Days:        cfg.BaseDays * sf,
			Files:       len(man.Files),
			Segments:    man.TotalSegments(),
			DataRecords: man.TotalSamples(),
		})
	}
	return rows, nil
}

// SizeRow is one line of Table III.
type SizeRow struct {
	SF          int
	MseedBytes  int64 // repository on disk
	CSVBytes    int64 // textual representation
	DBBytes     int64 // plainly loaded database (data + metadata)
	DBKeysBytes int64 // clustered + indexed database
	LazyBytes   int64 // metadata only
}

// TableIII measures the storage footprint of every representation.
func TableIII(cfg Config) ([]SizeRow, error) {
	var rows []SizeRow
	for _, sf := range cfg.ScaleFactors {
		dir, man, err := cfg.Repo(sf, false)
		if err != nil {
			return nil, err
		}
		row := SizeRow{SF: sf, MseedBytes: man.TotalBytes()}

		dbCSV, err := openDB(dir, registrar.EagerCSV)
		if err != nil {
			return nil, err
		}
		repCSV := dbCSV.Report()
		row.CSVBytes = repCSV.CSVBytes
		row.DBBytes = repCSV.DataBytes + repCSV.MetadataBytes

		dbIdx, err := openDB(dir, registrar.EagerIndex)
		if err != nil {
			return nil, err
		}
		repIdx := dbIdx.Report()
		row.DBKeysBytes = repIdx.DataBytes + repIdx.MetadataBytes + repIdx.IndexBytes

		dbLazy, err := openDB(dir, registrar.Lazy)
		if err != nil {
			return nil, err
		}
		row.LazyBytes = dbLazy.Report().MetadataBytes

		rows = append(rows, row)
	}
	return rows, nil
}
