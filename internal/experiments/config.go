// Package experiments regenerates every table and figure of the
// paper's evaluation section at laptop scale: Table II (dataset
// characteristics), Table III (dataset sizes), Figure 6 (loading cost
// breakdown), Figure 7 (single-query performance, cold and hot),
// Figure 8 (data-to-insight time vs. query selectivity) and Figure 9
// (workload performance vs. workload selectivity), plus the ablations
// DESIGN.md calls out.
//
// Scale factors keep the paper's 1:3:9:27 shape; absolute sizes are
// configurable so the full suite runs in seconds on a laptop while the
// relative behaviour (who wins, by what factor, where the crossovers
// fall) matches the paper.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/mseed"
	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
	"sommelier/internal/seismic"
	"sommelier/internal/table"
)

// Config parameterizes the experiment suite.
type Config struct {
	// WorkDir is where repositories are generated.
	WorkDir string
	// BaseDays is the repository span at sf-1 (paper: 40 days).
	BaseDays int
	// SamplesPerFile scales the per-chunk data volume.
	SamplesPerFile int
	// ScaleFactors to run; subsets of {1, 3, 9, 27}.
	ScaleFactors []int
	// WorkloadSizes for Figure 9 (paper: 100 and 200 queries).
	WorkloadSizes []int
	// Selectivities (percent) for Figures 8 and 9.
	Selectivities []int
	// Seed for repository generation.
	Seed int64
}

// DefaultConfig returns the configuration used by the benchmark
// harness: full scale-factor range at laptop volume.
func DefaultConfig(workDir string) Config {
	return Config{
		WorkDir:        workDir,
		BaseDays:       8,
		SamplesPerFile: 2400,
		ScaleFactors:   []int{1, 3, 9, 27},
		WorkloadSizes:  []int{100, 200},
		Selectivities:  []int{0, 10, 20, 40, 60, 80, 100},
		Seed:           2015,
	}
}

// TinyConfig returns a minimal configuration for tests.
func TinyConfig(workDir string) Config {
	return Config{
		WorkDir:        workDir,
		BaseDays:       2,
		SamplesPerFile: 300,
		ScaleFactors:   []int{1, 3},
		WorkloadSizes:  []int{5},
		Selectivities:  []int{0, 50, 100},
		Seed:           7,
	}
}

// repoStart is the first day of every generated repository.
var repoStart = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

// repoConfig derives the generator configuration for one scale factor.
// fiamOnly generates the single-station FIAM dataset of §VI-D/E.
func (c Config) repoConfig(sf int, fiamOnly bool) seisgen.Config {
	gen := seisgen.DefaultConfig(c.BaseDays * sf)
	gen.Seed = c.Seed
	gen.Start = repoStart
	gen.SamplesPerFile = c.SamplesPerFile
	gen.MeanSegments = 12
	gen.EventRate = 0.15
	if fiamOnly {
		gen.Stations = gen.Stations[:1] // FIAM
	}
	return gen
}

// Repo generates (or reuses) the repository for one scale factor and
// returns its directory and manifest.
func (c Config) Repo(sf int, fiamOnly bool) (string, *seisgen.Manifest, error) {
	name := fmt.Sprintf("sf-%d", sf)
	if fiamOnly {
		name = "fiam-" + name
	}
	dir := filepath.Join(c.WorkDir, name)
	if _, err := os.Stat(dir); err == nil {
		// Regenerate deterministically only if absent; a manifest is
		// rebuilt from the same generator parameters.
		man, err := regenManifest(dir, c.repoConfig(sf, fiamOnly))
		if err == nil {
			return dir, man, nil
		}
		// Fall through to regeneration on any inconsistency.
		if err := os.RemoveAll(dir); err != nil {
			return "", nil, err
		}
	}
	man, err := seisgen.Generate(dir, c.repoConfig(sf, fiamOnly))
	if err != nil {
		return "", nil, err
	}
	return dir, man, nil
}

// regenManifest re-synthesizes the manifest of an existing repository
// without touching the files (generation is deterministic).
func regenManifest(dir string, gen seisgen.Config) (*seisgen.Manifest, error) {
	man := &seisgen.Manifest{Dir: dir}
	for _, st := range gen.Stations {
		for _, ch := range st.Channels {
			for day := 0; day < gen.Days; day++ {
				date := gen.Start.AddDate(0, 0, day)
				name := fmt.Sprintf("%s.%s.%s.%s.msl", st.Network, st.Name, ch, date.Format("2006.002"))
				path := filepath.Join(dir, st.Name, ch, name)
				fi, err := os.Stat(path)
				if err != nil {
					return nil, err
				}
				f := seisgen.Synthesize(gen, st, ch, date)
				man.Files = append(man.Files, seisgen.FileInfo{
					URI:       path,
					Header:    f.Header,
					Segments:  segHeaders(f),
					Samples:   f.SampleCount(),
					SizeBytes: fi.Size(),
				})
			}
		}
	}
	return man, nil
}

func segHeaders(f *mseed.File) []mseed.SegmentHeader {
	out := make([]mseed.SegmentHeader, len(f.Segments))
	for i, s := range f.Segments {
		out[i] = s.Header
	}
	return out
}

// span returns the [start, end) time range of a repository at the
// given scale factor.
func (c Config) span(sf int) (int64, int64) {
	start := repoStart.UnixNano()
	end := repoStart.AddDate(0, 0, c.BaseDays*sf).UnixNano()
	return start, end
}

// openDB opens a database with the T3 metadata view registered.
func openDB(dir string, approach registrar.Approach) (*engine.DB, error) {
	// Experiments measure the paper's optimizer behaviour: force
	// every rule on, regardless of SOMMELIER_OPT_DISABLE.
	db, err := engine.Open(dir, engine.Config{Approach: approach, OptDisable: "none"})
	if err != nil {
		return nil, err
	}
	err = db.Catalog().AddView(&table.View{
		Name:   "windowdataview_md",
		Tables: []string{seismic.TableF, seismic.TableH},
		Joins: []table.JoinPred{
			{Left: "F.station", Right: "H.window_station"},
			{Left: "F.channel", Right: "H.window_channel"},
		},
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}
