package experiments

// This file holds the memory-focused headline dump (`benchrunner
// -memory-json` → BENCH_memory.json): allocation counts of the
// operator micros on the pooled steady-state path, heap and GC-pause
// behaviour over the fixed 48-query mixed bag, and hot-query latency
// quantiles at 1 and 16 clients. It tracks the batch-memory-lifecycle
// work the same way BENCH_parallel.json tracks the parallel-execution
// work.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/registrar"
)

// MemoryBagStats is the heap/GC accounting of one full pass over the
// 48-query bag on a warm database, results released after each query.
type MemoryBagStats struct {
	Queries        int    `json:"queries"`
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	HeapAllocDelta uint64 `json:"heap_alloc_delta_bytes"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	NumGC          uint32 `json:"num_gc"`
}

// LatencyQuantiles is the hot-query latency distribution at one client
// count.
type LatencyQuantiles struct {
	Clients int     `json:"clients"`
	Samples int     `json:"samples"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
}

// MemoryReport is the machine-readable memory summary.
type MemoryReport struct {
	GeneratedUnix int64                  `json:"generated_unix"`
	ScaleFactor   int                    `json:"scale_factor"`
	Micro         map[string]MicroResult `json:"micro"`
	Bag           MemoryBagStats         `json:"bag"`
	HotLatency    []LatencyQuantiles     `json:"hot_latency"`
}

// CollectMemory runs the operator micros (pooled steady-state path),
// one measured pass over the mixed bag, and the hot-query latency
// sweep, all against the lazy approach at the first scale factor.
func CollectMemory(cfg Config) (*MemoryReport, error) {
	sf := cfg.ScaleFactors[0]
	dir, _, err := cfg.Repo(sf, false)
	if err != nil {
		return nil, err
	}
	m := &MemoryReport{
		GeneratedUnix: time.Now().Unix(),
		ScaleFactor:   sf,
		Micro: map[string]MicroResult{
			"filter":  FilterMicro(),
			"join":    JoinMicro(),
			"groupby": GroupByMicro(),
		},
	}

	db, err := openDB(dir, registrar.Lazy)
	if err != nil {
		return nil, err
	}
	bag := mixedBag(cfg, sf)
	runBag := func() error {
		for _, sql := range bag {
			res, err := db.QueryContext(context.Background(), sql)
			if err != nil {
				return err
			}
			res.Release()
		}
		return nil
	}
	// Warm pass: ingest chunks, derive metadata, fill the plan cache.
	if err := runBag(); err != nil {
		return nil, fmt.Errorf("memory bag warmup: %w", err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := runBag(); err != nil {
		return nil, fmt.Errorf("memory bag: %w", err)
	}
	runtime.ReadMemStats(&after)
	m.Bag = MemoryBagStats{
		Queries:        len(bag),
		HeapInuseBytes: after.HeapInuse,
		HeapAllocDelta: after.TotalAlloc - before.TotalAlloc,
		GCPauseTotalNs: after.PauseTotalNs - before.PauseTotalNs,
		NumGC:          after.NumGC - before.NumGC,
	}

	// Hot-query latency: the T4 hot query replayed on the warm DB.
	start, _ := cfg.span(sf)
	hot := queryT4("FIAM", start, start+int64(24*time.Hour))
	for _, clients := range []int{1, 16} {
		q, err := hotLatency(db, hot, clients, 192)
		if err != nil {
			return nil, err
		}
		m.HotLatency = append(m.HotLatency, q)
	}
	return m, nil
}

// hotLatency replays sql total times across the given client count and
// reports the p50/p99 of the per-query latencies observed.
func hotLatency(db *engine.DB, sql string, clients, total int) (LatencyQuantiles, error) {
	var (
		mu       sync.Mutex
		lats     []time.Duration
		firstErr error
		wg       sync.WaitGroup
	)
	per := total / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				t0 := time.Now()
				res, err := db.QueryContext(context.Background(), sql)
				d := time.Since(t0)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				res.Release()
				local = append(local, d)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return LatencyQuantiles{}, firstErr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i].Microseconds())
	}
	return LatencyQuantiles{Clients: clients, Samples: len(lats), P50us: q(0.50), P99us: q(0.99)}, nil
}

// WriteMemoryJSON collects the memory report and writes it as indented
// JSON to path.
func WriteMemoryJSON(cfg Config, path string) error {
	m, err := CollectMemory(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
