package experiments

// This file holds the operator microbenchmarks and the machine-readable
// headline-metric dump: the perf trajectory of the execution core
// (selection vectors, zone maps, specialized hash paths) is tracked
// from benchrunner -json output checked in as BENCH_selection.json.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"sommelier/internal/expr"
	"sommelier/internal/physical"
	"sommelier/internal/storage"
)

// MicroResult is one operator microbenchmark measurement.
type MicroResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func microResult(r testing.BenchmarkResult) MicroResult {
	return MicroResult{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// microRel mirrors the physical package's benchmark relation: batches
// of (file_id, val) with a 64-key id domain.
func microRel(rows int) (*storage.Relation, []string, []storage.Kind) {
	rng := rand.New(rand.NewSource(3))
	rel := storage.NewRelation()
	for lo := 0; lo < rows; lo += storage.BatchSize {
		n := storage.BatchSize
		if rows-lo < n {
			n = rows - lo
		}
		ids := make([]int64, n)
		vals := make([]float64, n)
		for i := range ids {
			ids[i] = int64(rng.Intn(64))
			vals[i] = rng.NormFloat64() * 1000
		}
		rel.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewFloat64Column(vals)))
	}
	return rel, []string{"D.file_id", "D.val"}, []storage.Kind{storage.KindInt64, storage.KindFloat64}
}

// FilterMicro measures a predicated scan: the fused selection-vector
// filter kernel plus the final materializing drain.
func FilterMicro() MicroResult {
	rel, names, kinds := microRel(1 << 16)
	pred := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0))
	return microResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := physical.NewRelScan(rel, names, kinds, pred)
			if err != nil {
				b.Fatal(err)
			}
			out, err := physical.RunPooled(s)
			if err != nil {
				b.Fatal(err)
			}
			out.Release()
		}
	}))
}

// JoinMicro measures a dimension-fact hash join probe: the specialized
// single-int64-key path, serially.
func JoinMicro() MicroResult { return JoinMicroAt(1) }

// JoinMicroAt measures the join probe at the given degree of
// parallelism: dop > 1 drains the join through the morsel-parallel
// pipeline (split probes over the shared build table).
func JoinMicroAt(dop int) MicroResult {
	dimRel := storage.NewRelation()
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i)
	}
	dimRel.Append(storage.NewBatch(storage.NewInt64Column(ids)))
	factRel, fnames, fkinds := microRel(1 << 16)
	return microResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ds, err := physical.NewRelScan(dimRel, []string{"F.file_id"}, []storage.Kind{storage.KindInt64}, nil)
			if err != nil {
				b.Fatal(err)
			}
			fs, err := physical.NewRelScan(factRel, fnames, fkinds, nil)
			if err != nil {
				b.Fatal(err)
			}
			j, err := physical.NewHashJoin(ds, fs, []int{0}, []int{0})
			if err != nil {
				b.Fatal(err)
			}
			j.SetParallel(dop)
			out, err := physical.ParallelDrainPooled(j, dop, nil)
			if err != nil {
				b.Fatal(err)
			}
			out.Release()
		}
	}))
}

// GroupByMicro measures a grouped aggregation: the specialized
// single-int64-key group-by path, serially.
func GroupByMicro() MicroResult { return GroupByMicroAt(1) }

// GroupByMicroAt measures the grouped aggregation at the given degree
// of parallelism: dop > 1 folds thread-local partial aggregates over
// the scan's morsel ranges and merges them at the end.
func GroupByMicroAt(dop int) MicroResult {
	rel, names, kinds := microRel(1 << 16)
	return microResult(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := physical.NewRelScan(rel, names, kinds, nil)
			if err != nil {
				b.Fatal(err)
			}
			agg, err := physical.NewHashAggregate(s, []int{0}, []physical.AggColumn{
				{Func: physical.AggAvg, Arg: expr.Col("D.val"), Name: "avg"},
				{Func: physical.AggStddev, Arg: expr.Col("D.val"), Name: "sd"},
			})
			if err != nil {
				b.Fatal(err)
			}
			agg.SetParallel(dop)
			out, err := physical.RunPooled(agg)
			if err != nil {
				b.Fatal(err)
			}
			out.Release()
		}
	}))
}

// Headline is the machine-readable benchmark summary emitted by
// `benchrunner -json`: the Fig. 7/concurrency headline numbers plus the
// operator microbenchmarks.
type Headline struct {
	GeneratedUnix int64                  `json:"generated_unix"`
	ScaleFactor   int                    `json:"scale_factor"`
	LazyT4HotMs   float64                `json:"lazy_t4_hot_ms"`
	LazyQPS1      float64                `json:"lazy_qps_1client"`
	LazyQPS16     float64                `json:"lazy_qps_16clients"`
	LazyScaling16 float64                `json:"lazy_scaling_16_over_1"`
	Micro         map[string]MicroResult `json:"micro"`
	Parallel      *ParallelMetrics       `json:"parallel,omitempty"`
}

// ParallelMetrics is the parallel-execution section of the headline
// dump (written to BENCH_parallel.json by `make bench-json`, so the
// selection-era numbers in BENCH_selection.json stay as the historical
// baseline): cross-query scaling of the lazy service at 1/4/16 clients
// and intra-query speedup of the join/group-by microbenchmarks at
// DOP = GOMAXPROCS.
//
// Bench honesty: on a single-core host a "parallel speedup" is not a
// measurement, it is noise around 1.0 — so when GOMAXPROCS = 1 the
// speedup fields are null and Caveat says why, instead of printing a
// headline number that means nothing.
type ParallelMetrics struct {
	GOMAXPROCS     int      `json:"gomaxprocs"`
	LazyQPS1       float64  `json:"lazy_qps_1client"`
	LazyQPS4       float64  `json:"lazy_qps_4clients"`
	LazyQPS16      float64  `json:"lazy_qps_16clients"`
	Scaling4       float64  `json:"lazy_scaling_4_over_1"`
	Scaling16      float64  `json:"lazy_scaling_16_over_1"`
	JoinSpeedup    *float64 `json:"join_parallel_speedup"`
	GroupBySpeedup *float64 `json:"groupby_parallel_speedup"`
	Caveat         string   `json:"caveat,omitempty"`
}

// CollectHeadline runs the headline experiments (Fig. 7 single-query
// hot time, the concurrent-client sweep) at the configuration's first
// scale factor, plus the operator microbenchmarks.
func CollectHeadline(cfg Config) (*Headline, error) {
	cfg.ScaleFactors = cfg.ScaleFactors[:1]
	h := &Headline{
		GeneratedUnix: time.Now().Unix(),
		ScaleFactor:   cfg.ScaleFactors[0],
		Micro: map[string]MicroResult{
			"filter":  FilterMicro(),
			"join":    JoinMicro(),
			"groupby": GroupByMicro(),
		},
	}
	fig7, err := Fig7(cfg)
	if err != nil {
		return nil, fmt.Errorf("headline fig7: %w", err)
	}
	for _, r := range fig7 {
		if r.Approach == "lazy" && r.QueryType == 4 {
			h.LazyT4HotMs = float64(r.Hot) / float64(time.Millisecond)
		}
	}
	conc, err := ConcurrentLoad(cfg)
	if err != nil {
		return nil, fmt.Errorf("headline concurrency: %w", err)
	}
	par := &ParallelMetrics{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, r := range conc {
		if r.Approach == "lazy" {
			switch r.Clients {
			case 1:
				h.LazyQPS1 = r.QPS
				par.LazyQPS1 = r.QPS
			case 4:
				par.LazyQPS4 = r.QPS
			case 16:
				h.LazyQPS16 = r.QPS
				par.LazyQPS16 = r.QPS
			}
		}
	}
	if h.LazyQPS1 > 0 {
		h.LazyScaling16 = h.LazyQPS16 / h.LazyQPS1
		par.Scaling4 = par.LazyQPS4 / par.LazyQPS1
		par.Scaling16 = par.LazyQPS16 / par.LazyQPS1
	}
	if dop := par.GOMAXPROCS; dop > 1 {
		if pj := JoinMicroAt(dop); pj.NsPerOp > 0 {
			s := h.Micro["join"].NsPerOp / pj.NsPerOp
			par.JoinSpeedup = &s
		}
		if pg := GroupByMicroAt(dop); pg.NsPerOp > 0 {
			s := h.Micro["groupby"].NsPerOp / pg.NsPerOp
			par.GroupBySpeedup = &s
		}
	} else {
		// No parallel hardware, no parallel claim: leave the speedups
		// null rather than publishing a 1.0 that looks like a result.
		par.Caveat = "GOMAXPROCS=1: parallel speedups not measurable on this host; speedup fields are null"
	}
	h.Parallel = par
	return h, nil
}

// WriteHeadlineJSON collects the headline metrics and writes them as
// indented JSON to path.
func WriteHeadlineJSON(cfg Config, path string) error {
	h, err := CollectHeadline(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
