package experiments

// This file holds the streaming-execution headline dump (`benchrunner
// -streaming-json` → BENCH_streaming.json): time-to-first-row and peak
// heap for streaming vs materialized delivery over wide scans at two
// result cardinalities (streaming peak memory must not grow with the
// result), the LIMIT-10-over-a-full-archive-scan first-row speedup
// (sink-driven cancellation stops the scan after the first batches),
// and the top-k pushdown comparison (the `topk` rule's bounded heap vs
// the Sort+Limit pair it replaces).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/physical"
	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

// StreamingCase compares one query's materialized and streaming
// executions. For the materialized path first row == last row: nothing
// is visible until the whole result exists, so its time-to-first-row
// is its total latency.
type StreamingCase struct {
	Name  string `json:"name"`
	Query string `json:"query"`
	Rows  int    `json:"rows"`
	// Materialized path.
	MaterializedTotalUS   int64  `json:"materialized_total_us"`
	MaterializedHeapPeakB uint64 `json:"materialized_heap_peak_bytes"`
	MaterializedResultB   int64  `json:"materialized_result_bytes"`
	// Streaming path.
	StreamFirstRowUS int64   `json:"stream_first_row_us"`
	StreamTotalUS    int64   `json:"stream_total_us"`
	StreamHeapPeakB  uint64  `json:"stream_heap_peak_bytes"`
	StreamMaxBatchB  int64   `json:"stream_max_pushed_batch_bytes"`
	FirstRowSpeedup  float64 `json:"first_row_speedup"`
}

// TopKCase compares ORDER BY + LIMIT execution with the topk rule on
// (bounded-heap operator) and off (full Sort feeding Limit), both
// materialized, on otherwise identical databases.
type TopKCase struct {
	Name          string  `json:"name"`
	Query         string  `json:"query"`
	Rows          int     `json:"rows"`
	TopKUS        int64   `json:"topk_us"`
	TopKHeapPeakB uint64  `json:"topk_heap_peak_bytes"`
	SortLimitUS   int64   `json:"sort_limit_us"`
	SortHeapPeakB uint64  `json:"sort_limit_heap_peak_bytes"`
	Speedup       float64 `json:"speedup"`
}

// StreamingReport is the machine-readable streaming summary.
type StreamingReport struct {
	GeneratedUnix int64           `json:"generated_unix"`
	GoMaxProcs    int             `json:"gomaxprocs"`
	ScaleFactor   int             `json:"scale_factor"`
	Cases         []StreamingCase `json:"cases"`
	TopK          []TopKCase      `json:"topk"`
}

// heapSampler polls HeapInuse while a measured run executes; peak
// memory of a query is a sampled quantity, not an instantaneous one.
type heapSampler struct {
	stop chan struct{}
	done chan uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan uint64)}
	go func() {
		var ms runtime.MemStats
		var peak uint64
		t := time.NewTicker(200 * time.Microsecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
			case <-s.stop:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
				s.done <- peak
				return
			}
		}
	}()
	return s
}

func (s *heapSampler) peak() uint64 {
	close(s.stop)
	return <-s.done
}

// ttfrSink recycles streamed batches, recording the first-push time
// and the largest single batch it ever held — the streaming path's
// resident working set.
type ttfrSink struct {
	start    time.Time
	firstAt  time.Duration
	rows     int
	maxBatch int64
	// stopAt > 0 makes the sink return ErrStopStream once it has that
	// many rows — the first-N client whose stop cancels the scan.
	stopAt int
}

func (s *ttfrSink) Push(b *storage.Batch) error {
	if s.rows == 0 {
		s.firstAt = time.Since(s.start)
	}
	s.rows += b.Len()
	if sz := b.MemSize(); sz > s.maxBatch {
		s.maxBatch = sz
	}
	storage.PutBatch(b)
	if s.stopAt > 0 && s.rows >= s.stopAt {
		return physical.ErrStopStream
	}
	return nil
}

// measureCase runs one query both ways (best of runs, GC'd baseline)
// and fills a StreamingCase.
func measureCase(db *engine.DB, name, sql string, runs int) (StreamingCase, error) {
	c := StreamingCase{Name: name, Query: sql}
	for r := 0; r < runs; r++ {
		runtime.GC()
		hs := startHeapSampler()
		t0 := time.Now()
		res, err := db.QueryContext(context.Background(), sql)
		if err != nil {
			hs.peak()
			return c, err
		}
		total := time.Since(t0)
		peak := hs.peak()
		c.Rows = res.Rows()
		resident := res.Rel.MemSize()
		res.Release()
		if r == 0 || total.Microseconds() < c.MaterializedTotalUS {
			c.MaterializedTotalUS = total.Microseconds()
			c.MaterializedHeapPeakB = peak
			c.MaterializedResultB = resident
		}
	}
	for r := 0; r < runs; r++ {
		runtime.GC()
		hs := startHeapSampler()
		sink := &ttfrSink{start: time.Now()}
		sres, err := db.QueryStream(context.Background(), sql, sink)
		if err != nil {
			hs.peak()
			return c, err
		}
		total := time.Since(sink.start)
		peak := hs.peak()
		sres.Release()
		if sink.rows != c.Rows {
			return c, fmt.Errorf("%s: streamed %d rows, materialized %d", name, sink.rows, c.Rows)
		}
		first := sink.firstAt
		if sink.rows == 0 {
			first = total
		}
		if r == 0 || first.Microseconds() < c.StreamFirstRowUS {
			c.StreamFirstRowUS = first.Microseconds()
			c.StreamTotalUS = total.Microseconds()
			c.StreamHeapPeakB = peak
			c.StreamMaxBatchB = sink.maxBatch
		}
	}
	if c.StreamFirstRowUS > 0 {
		c.FirstRowSpeedup = float64(c.MaterializedTotalUS) / float64(c.StreamFirstRowUS)
	}
	return c, nil
}

// CollectStreaming runs the streaming-vs-materialized comparison at
// the first scale factor against the lazy approach.
func CollectStreaming(cfg Config) (*StreamingReport, error) {
	sf := cfg.ScaleFactors[0]
	dir, _, err := cfg.Repo(sf, false)
	if err != nil {
		return nil, err
	}
	db, err := openDB(dir, registrar.Lazy)
	if err != nil {
		return nil, err
	}
	start, end := cfg.span(sf)
	mid := start + (end-start)/2
	rep := &StreamingReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		ScaleFactor:   sf,
	}
	wide := func(to int64) string {
		return fmt.Sprintf(`SELECT D.sample_time, D.sample_value FROM dataview
		  WHERE F.station = 'FIAM' AND D.sample_time >= '%s' AND D.sample_time < '%s'`,
			fmtTS(start), fmtTS(to))
	}
	// Warm the chunk cache so the comparison measures execution, not
	// first-touch ingestion.
	if res, err := db.QueryContext(context.Background(), wide(end)); err != nil {
		return nil, err
	} else {
		res.Release()
	}
	const runs = 3
	cases := []struct{ name, sql string }{
		// Two cardinalities of the same scan shape: streaming peak heap
		// must stay flat while the materialized result (and its heap)
		// doubles.
		{"wide_scan_half_archive", wide(mid)},
		{"wide_scan_full_archive", wide(end)},
		// The acceptance case: first 10 rows of a full-archive scan.
		// Streaming short-circuits the scan via sink cancellation;
		// materialized execution scans everything, keeps 10 rows.
		{"limit10_full_archive", wide(end) + ` LIMIT 10`},
	}
	for _, tc := range cases {
		c, err := measureCase(db, tc.name, tc.sql, runs)
		if err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, c)
	}

	// The sink-driven cancellation case: a client streams the full
	// archive scan but stops after 10 rows (no LIMIT clause). The
	// materialized side must compute the whole result before the client
	// sees anything; the streaming side cancels the scan down to the
	// morsel cursor after the first batch. This is the headline
	// first-row speedup for first-N consumption of a wide scan.
	fc := StreamingCase{Name: "first10_of_full_scan_stop", Query: wide(end) + ` /* client stops after 10 rows */`}
	for r := 0; r < runs; r++ {
		runtime.GC()
		hs := startHeapSampler()
		t0 := time.Now()
		res, err := db.QueryContext(context.Background(), wide(end))
		if err != nil {
			hs.peak()
			return nil, err
		}
		total, peak := time.Since(t0), hs.peak()
		resident := res.Rel.MemSize()
		res.Release()
		if r == 0 || total.Microseconds() < fc.MaterializedTotalUS {
			fc.MaterializedTotalUS = total.Microseconds()
			fc.MaterializedHeapPeakB = peak
			fc.MaterializedResultB = resident
		}
	}
	for r := 0; r < runs; r++ {
		runtime.GC()
		hs := startHeapSampler()
		sink := &ttfrSink{start: time.Now(), stopAt: 10}
		sres, err := db.QueryStream(context.Background(), wide(end), sink)
		if err != nil {
			hs.peak()
			return nil, err
		}
		total, peak := time.Since(sink.start), hs.peak()
		sres.Release()
		if r == 0 || sink.firstAt.Microseconds() < fc.StreamFirstRowUS {
			fc.StreamFirstRowUS = sink.firstAt.Microseconds()
			fc.StreamTotalUS = total.Microseconds()
			fc.StreamHeapPeakB = peak
			fc.StreamMaxBatchB = sink.maxBatch
			fc.Rows = sink.rows
		}
	}
	if fc.StreamFirstRowUS > 0 {
		fc.FirstRowSpeedup = float64(fc.MaterializedTotalUS) / float64(fc.StreamFirstRowUS)
	}
	rep.Cases = append(rep.Cases, fc)

	// Top-k pushdown: same database contents, one engine with the topk
	// rule (bounded heap), one without (full sort feeding the limit).
	dbNoTopK, err := engine.Open(dir, engine.Config{Approach: registrar.Lazy, OptDisable: "topk"})
	if err != nil {
		return nil, err
	}
	topkSQL := fmt.Sprintf(`SELECT D.sample_value, D.sample_time FROM dataview
	  WHERE F.station = 'FIAM' AND D.sample_time >= '%s' AND D.sample_time < '%s'
	  ORDER BY D.sample_value DESC, D.sample_time LIMIT 10`, fmtTS(start), fmtTS(end))
	tk := TopKCase{Name: "topk_limit10_full_archive", Query: topkSQL}
	for r := 0; r < runs; r++ {
		runtime.GC()
		hs := startHeapSampler()
		t0 := time.Now()
		res, err := db.QueryContext(context.Background(), topkSQL)
		if err != nil {
			hs.peak()
			return nil, err
		}
		el, peak := time.Since(t0).Microseconds(), hs.peak()
		tk.Rows = res.Rows()
		res.Release()
		if r == 0 || el < tk.TopKUS {
			tk.TopKUS, tk.TopKHeapPeakB = el, peak
		}

		runtime.GC()
		hs = startHeapSampler()
		t0 = time.Now()
		res, err = dbNoTopK.QueryContext(context.Background(), topkSQL)
		if err != nil {
			hs.peak()
			return nil, err
		}
		el, peak = time.Since(t0).Microseconds(), hs.peak()
		res.Release()
		if r == 0 || el < tk.SortLimitUS {
			tk.SortLimitUS, tk.SortHeapPeakB = el, peak
		}
	}
	if tk.TopKUS > 0 {
		tk.Speedup = float64(tk.SortLimitUS) / float64(tk.TopKUS)
	}
	rep.TopK = append(rep.TopK, tk)
	return rep, nil
}

// WriteStreamingJSON collects the streaming report and writes it as
// indented JSON to path.
func WriteStreamingJSON(cfg Config, path string) error {
	m, err := CollectStreaming(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// The CollectStreaming sinks retain nothing, so the file has no
// exported use of physical beyond the sink contract.
var _ physical.StreamSink = (*ttfrSink)(nil)
