package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/engine"
	"sommelier/internal/opt"
	"sommelier/internal/plan"
	"sommelier/internal/registrar"
	"sommelier/internal/sqlparse"
)

// ParallelLoadRow compares lazy ingestion with parallel vs serial
// chunk loading (the paper's §V remark on static parallelization).
type ParallelLoadRow struct {
	SF          int
	MaxParallel int
	QueryTime   time.Duration
	Chunks      int
}

// AblationParallelLoad runs a 100%-selectivity T4 query — every chunk
// must be ingested — with the loader bounded to 1 worker vs all cores.
func AblationParallelLoad(cfg Config) ([]ParallelLoadRow, error) {
	sf := cfg.ScaleFactors[len(cfg.ScaleFactors)-1]
	dir, _, err := cfg.Repo(sf, true)
	if err != nil {
		return nil, err
	}
	start, end := cfg.span(sf)
	sql := queryT4("FIAM", start, end)
	var rows []ParallelLoadRow
	for _, par := range []int{1, 0} {
		db, err := engine.Open(dir, engine.Config{Approach: registrar.Lazy, MaxParallel: par})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := db.Query(sql)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ParallelLoadRow{
			SF: sf, MaxParallel: par, QueryTime: time.Since(t0), Chunks: res.Stats.ChunksLoaded,
		})
		res.Release()
	}
	return rows, nil
}

// CachePolicyRow compares recycler replacement policies under a skewed
// re-access pattern with a cache holding only part of the working set.
type CachePolicyRow struct {
	Policy    string
	Hits      int64
	Misses    int64
	Evictions int64
	Total     time.Duration
}

// AblationCachePolicy replays a zipf-skewed sequence of two-day T4
// queries against a deliberately small recycler under LRU and the
// cost-aware policy (the paper's "smarter caching" future work).
func AblationCachePolicy(cfg Config) ([]CachePolicyRow, error) {
	sf := cfg.ScaleFactors[len(cfg.ScaleFactors)-1]
	dir, _, err := cfg.Repo(sf, true)
	if err != nil {
		return nil, err
	}
	start, _ := cfg.span(sf)
	days := cfg.BaseDays * sf
	var rows []CachePolicyRow
	for _, pol := range []cache.Policy{cache.LRU, cache.CostAware} {
		name := "lru"
		if pol == cache.CostAware {
			name = "cost-aware"
		}
		// Size the cache to roughly a third of the chunks.
		probe, err := engine.Open(dir, engine.Config{Approach: registrar.Lazy})
		if err != nil {
			return nil, err
		}
		pres, err := probe.Query(queryT4("FIAM", start, start+int64(24*time.Hour)))
		if err != nil {
			return nil, err
		}
		pres.Release()
		perChunk := probe.Report().DataBytes
		db, err := engine.Open(dir, engine.Config{
			Approach:    registrar.Lazy,
			CacheBytes:  perChunk * int64(days) / 3,
			CachePolicy: pol,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(42))
		zipf := rand.NewZipf(rng, 1.3, 1, uint64(days-1))
		t0 := time.Now()
		for i := 0; i < 4*days; i++ {
			day := int(zipf.Uint64())
			lo := start + int64(day)*int64(24*time.Hour)
			qres, err := db.Query(queryT4("FIAM", lo, lo+int64(24*time.Hour)))
			if err != nil {
				return nil, err
			}
			qres.Release()
		}
		total := time.Since(t0)
		st := db.CacheStats()
		rows = append(rows, CachePolicyRow{
			Policy: name, Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Total: total,
		})
	}
	return rows, nil
}

// JoinRuleRow reports how many chunks a query touches with the R1–R4
// rule set versus the worst case the rules exist to avoid.
type JoinRuleRow struct {
	Query        string
	WithRules    int // chunks selected via Qf
	WithoutRules int // chunks a metadata-blind plan must load
}

// AblationJoinRules quantifies the rule set's effect: the Qf-driven
// chunk selection of a selective T4 query versus the all-chunks worst
// case (rule R2's motivating scenario: accessing actual data without
// exploiting metadata).
func AblationJoinRules(cfg Config) ([]JoinRuleRow, error) {
	sf := cfg.ScaleFactors[0]
	dir, man, err := cfg.Repo(sf, false)
	if err != nil {
		return nil, err
	}
	db, err := openDB(dir, registrar.Lazy)
	if err != nil {
		return nil, err
	}
	start, _ := cfg.span(sf)
	sql := queryT4("FIAM", start, start+2*int64(24*time.Hour))
	res, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	defer res.Release()
	// Sanity-check that the compiled plan really carries a Qf branch.
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(db.Catalog(), q)
	if err != nil {
		return nil, err
	}
	p, err = opt.Optimize(&opt.Context{Catalog: db.Catalog()}, p, opt.Default())
	if err != nil {
		return nil, err
	}
	if p.Qf == nil {
		return nil, fmt.Errorf("ablation: T4 plan lost its Qf branch")
	}
	return []JoinRuleRow{{
		Query:        "T4, one station, 2 days",
		WithRules:    res.Stats.ChunksSelected,
		WithoutRules: len(man.Files),
	}}, nil
}
