package experiments

// This file holds the robustness headline dump (`benchrunner
// -robustness-json` → BENCH_robustness.json): the 48-query mixed bag
// run cold (cache cleared before every query, so every query exercises
// the chunk-ingestion fault points) under three fault regimes — clean
// (injector disabled), armed at rate zero (the retry/injection
// plumbing is live but never fires: its overhead must be noise), and a
// ~1% fault schedule in degraded mode (queries proceed over available
// chunks and report what they skipped). The report captures p50/p99
// latency per regime plus the degraded-result rate and skipped-chunk
// count under faults.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/fault"
	"sommelier/internal/registrar"
	"sommelier/internal/seismic"
	"sommelier/internal/table"
)

// FaultySchedule is the deterministic ~1% schedule of the faulty
// regime: each chunk flight has a 1% chance of failing at its head and
// each cache fill a 0.5% chance of failing after the load.
const FaultySchedule = "exec.flight=error:0.01,cache.fill=error:0.005"

// FaultySeed pins the faulty regime's schedule so reruns see the same
// fault sequence.
const FaultySeed = 1

// RobustnessPhase is one fault regime's view of the mixed bag.
type RobustnessPhase struct {
	Name   string `json:"name"`
	Faults string `json:"faults"`
	// Degraded reports whether queries were allowed to proceed over
	// missing chunks (always false for the clean regime).
	Degraded bool `json:"degraded"`
	Queries  int  `json:"queries"`
	// Latency quantiles over per-query wall times, cold cache.
	P50US int64 `json:"p50_us"`
	P99US int64 `json:"p99_us"`
	// DegradedQueries counts queries that returned with warnings;
	// DegradedRate is the fraction of the bag.
	DegradedQueries int     `json:"degraded_queries"`
	DegradedRate    float64 `json:"degraded_rate"`
	// ChunksSkipped is the total across the bag.
	ChunksSkipped int `json:"chunks_skipped"`
	// FaultsFired is the injector's count of fired faults (zero for
	// clean and armed-zero regimes).
	FaultsFired uint64 `json:"faults_fired"`
}

// RobustnessReport is the machine-readable robustness summary.
type RobustnessReport struct {
	GeneratedUnix int64 `json:"generated_unix"`
	GoMaxProcs    int   `json:"gomaxprocs"`
	ScaleFactor   int   `json:"scale_factor"`
	// ArmedOverheadP50 is armed-zero p50 / clean p50 — the cost of the
	// live retry/injection plumbing when no fault ever fires.
	ArmedOverheadP50 float64           `json:"armed_overhead_p50"`
	Phases           []RobustnessPhase `json:"phases"`
}

// openRobust opens a lazy database with an explicit fault
// configuration and the T3 metadata view registered.
func openRobust(dir string, cfg engine.Config) (*engine.DB, error) {
	cfg.Approach = registrar.Lazy
	cfg.OptDisable = "none"
	db, err := engine.Open(dir, cfg)
	if err != nil {
		return nil, err
	}
	err = db.Catalog().AddView(&table.View{
		Name:   "windowdataview_md",
		Tables: []string{seismic.TableF, seismic.TableH},
		Joins: []table.JoinPred{
			{Left: "F.station", Right: "H.window_station"},
			{Left: "F.channel", Right: "H.window_channel"},
		},
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// robustnessRounds is how many times each phase repeats the bag: the
// per-query wall times sit in the tens of microseconds, so a single
// pass puts timer jitter in the same decade as the p50 itself. One
// extra warm-up pass (compile + plan cache) is run first and
// discarded.
const robustnessRounds = 5

// runRobustnessPhase runs the bag cold (cache cleared before each
// query, so chunk ingestion — and with it the fault points — runs
// every time) and summarizes latencies and degradation.
func runRobustnessPhase(db *engine.DB, name, faults string, degraded bool, bag []string) (RobustnessPhase, error) {
	p := RobustnessPhase{Name: name, Faults: faults, Degraded: degraded, Queries: len(bag) * robustnessRounds}
	lat := make([]int64, 0, len(bag)*robustnessRounds)
	for round := -1; round < robustnessRounds; round++ {
		for _, sql := range bag {
			db.ClearCache()
			t0 := time.Now()
			res, err := db.QueryContext(context.Background(), sql)
			if err != nil {
				return p, fmt.Errorf("%s: %w", name, err)
			}
			if round < 0 { // warm-up pass
				res.Release()
				continue
			}
			lat = append(lat, time.Since(t0).Microseconds())
			if len(res.Warnings) > 0 {
				p.DegradedQueries++
				p.ChunksSkipped += res.Stats.ChunksSkipped
			}
			res.Release()
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p.P50US = quantileUS(lat, 0.50)
	p.P99US = quantileUS(lat, 0.99)
	p.DegradedRate = float64(p.DegradedQueries) / float64(p.Queries)
	return p, nil
}

func quantileUS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// CollectRobustness runs the three fault regimes over the mixed bag at
// the first scale factor.
func CollectRobustness(cfg Config) (*RobustnessReport, error) {
	sf := cfg.ScaleFactors[0]
	dir, _, err := cfg.Repo(sf, false)
	if err != nil {
		return nil, err
	}
	bag := mixedBag(cfg, sf)
	rep := &RobustnessReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		ScaleFactor:   sf,
	}

	regimes := []struct {
		name     string
		faults   string
		degraded bool
	}{
		// Injector disabled outright: the baseline, and a shield against
		// any ambient SOMMELIER_FAULTS schedule.
		{"clean", "off", false},
		// Armed but silent: every fault point is checked, none fires.
		{"armed_zero_rate", "exec.flight=error:0,cache.fill=error:0", false},
		// The headline: ~1% chunk-level faults, queries degrade instead
		// of failing.
		{"faulty_1pct", FaultySchedule, true},
	}
	for _, rg := range regimes {
		db, err := openRobust(dir, engine.Config{
			Degraded:  rg.degraded,
			Faults:    rg.faults,
			FaultSeed: FaultySeed,
		})
		if err != nil {
			return nil, err
		}
		p, err := runRobustnessPhase(db, rg.name, rg.faults, rg.degraded, bag)
		if err != nil {
			return nil, err
		}
		if inj := db.FaultInjector(); inj != nil {
			p.FaultsFired = inj.Fired(fault.PointFlight) + inj.Fired(fault.PointCacheFill) +
				inj.Fired(fault.PointHTTP) + inj.Fired(fault.PointDecode)
		}
		rep.Phases = append(rep.Phases, p)
	}
	if rep.Phases[0].P50US > 0 {
		rep.ArmedOverheadP50 = float64(rep.Phases[1].P50US) / float64(rep.Phases[0].P50US)
	}
	return rep, nil
}

// WriteRobustnessJSON collects the robustness report and writes it as
// indented JSON to path.
func WriteRobustnessJSON(cfg Config, path string) error {
	m, err := CollectRobustness(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
