package experiments

// The compiled-plan cache benchmark: how much per-query compilation
// (parse + plan.Build + opt) the cache and prepared statements save on
// a hot lazy workload, and what the prepared-vs-direct QPS ratio looks
// like. `benchrunner -plancache-json` dumps the numbers to
// BENCH_plancache.json via `make bench-json`.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sommelier/internal/registrar"
)

// PlanCacheMetrics is the machine-readable plan-cache headline.
type PlanCacheMetrics struct {
	GeneratedUnix int64 `json:"generated_unix"`
	ScaleFactor   int   `json:"scale_factor"`
	// CompileColdUS is the full compile cost on a cache miss (parse +
	// plan.Build + opt); CompileHitUS is what remains of the direct-SQL
	// path on a hit (parse + normalized-key lookup). The prepared path
	// compiles nothing at all.
	CompileColdUS float64 `json:"compile_cold_us"`
	CompileHitUS  float64 `json:"compile_hit_us"`
	// HitRate is plan-cache hits over lookups for the measured workload.
	HitRate float64 `json:"hit_rate"`
	// DirectQPS replays the same hot T4 statement as SQL text per call;
	// PreparedQPS replays it through one prepared statement handle.
	DirectQPS          float64 `json:"direct_qps"`
	PreparedQPS        float64 `json:"prepared_qps"`
	PreparedOverDirect float64 `json:"prepared_over_direct"`
}

// CollectPlanCache measures the plan-cache headline on the first scale
// factor: compile-time cold vs hit, cache hit rate, and direct-SQL vs
// prepared-statement throughput of the hot T4 query.
func CollectPlanCache(cfg Config) (*PlanCacheMetrics, error) {
	sf := cfg.ScaleFactors[0]
	dir, _, err := cfg.Repo(sf, false)
	if err != nil {
		return nil, err
	}
	db, err := openDB(dir, registrar.Lazy)
	if err != nil {
		return nil, err
	}
	start, _ := cfg.span(sf)
	sql := queryT4("FIAM", start, start+2*int64(24*time.Hour))

	m := &PlanCacheMetrics{GeneratedUnix: time.Now().Unix(), ScaleFactor: sf}

	// Cold compile, then hot-path compile cost over repeated runs.
	res, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	m.CompileColdUS = float64(res.Compile.Microseconds())
	res.Release()
	const runs = 200
	var hitCompile time.Duration
	for i := 0; i < runs; i++ {
		res, err := db.Query(sql)
		if err != nil {
			return nil, err
		}
		if !res.PlanCacheHit {
			res.Release()
			return nil, fmt.Errorf("plancache: hot run %d missed the cache", i)
		}
		hitCompile += res.Compile
		res.Release()
	}
	m.CompileHitUS = float64(hitCompile.Microseconds()) / runs

	// Direct-path QPS: parse + cache lookup + execute per call.
	t0 := time.Now()
	for i := 0; i < runs; i++ {
		res, err := db.Query(sql)
		if err != nil {
			return nil, err
		}
		res.Release()
	}
	m.DirectQPS = runs / time.Since(t0).Seconds()

	// Prepared-path QPS: zero compile work per call.
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	for i := 0; i < runs; i++ {
		res, err := stmt.Query()
		if err != nil {
			return nil, err
		}
		res.Release()
	}
	m.PreparedQPS = runs / time.Since(t0).Seconds()
	if m.DirectQPS > 0 {
		m.PreparedOverDirect = m.PreparedQPS / m.DirectQPS
	}

	st := db.PlanCacheStats()
	if total := st.Hits + st.Misses; total > 0 {
		m.HitRate = float64(st.Hits) / float64(total)
	}
	return m, nil
}

// WritePlanCacheJSON collects the plan-cache metrics and writes them as
// indented JSON to path.
func WritePlanCacheJSON(cfg Config, path string) error {
	m, err := CollectPlanCache(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
