package experiments

// This file holds the cold-start headline dump (`benchrunner
// -coldstart-json` → BENCH_coldstart.json): how long a process takes
// to reach hot QPS on the full 48-query mixed bag, measured twice
// against the same cache directory — first cold (empty directory:
// metadata registration reads every file, every chunk comes from the
// archive, every DMd window derives from scratch) and then as a warm
// restart (snapshot + disk tier: the same bag must be served from
// local state, with zero archive fetches).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/seismic"
	"sommelier/internal/table"
)

// ColdstartPhase is one process lifetime against the cache directory.
// The headline number is TimeToHotMs — the cold-start-to-hot-QPS time:
// how long the process spends on startup work (open + everything the
// first bag pass does beyond a hot pass) before it serves at hot QPS.
// Subtracting the hot pass isolates the tax the disk tier can remove;
// the irreducible query execution is identical in both phases and
// would otherwise drown it.
type ColdstartPhase struct {
	Name string `json:"name"`
	// WarmStart reports whether Open restored the metadata snapshot
	// instead of registering from raw miniSEED.
	WarmStart bool `json:"warm_start"`
	// OpenMs is Open alone; FirstPassMs is the first full bag (chunk
	// ingestion, DMd derivation, plan compilation happen here);
	// HotPassMs is the best fully-hot repeat of the same bag.
	OpenMs      float64 `json:"open_ms"`
	FirstPassMs float64 `json:"first_pass_ms"`
	HotPassMs   float64 `json:"hot_pass_ms"`
	// TimeToHotMs = open + first pass − hot pass.
	TimeToHotMs float64 `json:"time_to_hot_ms"`
	Queries     int     `json:"queries"`
	// HotQPS is the bag throughput once hot.
	HotQPS float64 `json:"hot_qps"`
	// ArchiveFetches counts raw archive opens this process performed
	// (metadata registration + chunk loads). The warm phase must be 0.
	ArchiveFetches int64 `json:"archive_fetches"`
	// DiskCache is the disk tier's counters at the end of the phase.
	DiskCache cache.DiskTierStats `json:"disk_cache"`
}

// ColdstartReport is the machine-readable cold-start summary.
type ColdstartReport struct {
	GeneratedUnix int64          `json:"generated_unix"`
	GoMaxProcs    int            `json:"gomaxprocs"`
	ScaleFactor   int            `json:"scale_factor"`
	Cold          ColdstartPhase `json:"cold"`
	Warm          ColdstartPhase `json:"warm"`
	// Speedup is cold time-to-hot / warm time-to-hot: how much faster a
	// restarted process reaches hot QPS.
	Speedup float64 `json:"speedup"`
}

// openTiered opens a lazy database against a persistent cache
// directory, with the T3 metadata view registered.
func openTiered(dir, cacheDir string) (*engine.DB, error) {
	db, err := engine.Open(dir, engine.Config{
		Approach:   registrar.Lazy,
		OptDisable: "none",
		CacheDir:   cacheDir,
	})
	if err != nil {
		return nil, err
	}
	err = db.Catalog().AddView(&table.View{
		Name:   "windowdataview_md",
		Tables: []string{seismic.TableF, seismic.TableH},
		Joins: []table.JoinPred{
			{Left: "F.station", Right: "H.window_station"},
			{Left: "F.channel", Right: "H.window_channel"},
		},
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// coldstartHotPasses is how many fully-hot bag repeats each phase
// runs; the best one is the hot baseline (minimum filters scheduler
// noise out of the subtraction).
const coldstartHotPasses = 3

// coldstartPhaseReps is how many full process lifetimes each phase
// measures; the one with the lowest time-to-hot is reported. The tax
// is tens of milliseconds, so a single scheduler hiccup during the
// one first pass would otherwise dominate the comparison — the same
// minimum-filters-noise rule the hot baseline uses, applied at the
// phase level.
const coldstartPhaseReps = 3

// runColdstartPhase times one process lifetime: open, serve the bag
// once (the pass that pays for ingestion and derivation), repeat it
// hot, snapshot the counters, close (persisting warm-restart state).
func runColdstartPhase(name, dir, cacheDir string, bag []string) (ColdstartPhase, error) {
	p := ColdstartPhase{Name: name, Queries: len(bag)}
	runBag := func(db *engine.DB) (time.Duration, error) {
		t0 := time.Now()
		for _, sql := range bag {
			res, err := db.QueryContext(context.Background(), sql)
			if err != nil {
				return 0, fmt.Errorf("%s: %w", name, err)
			}
			res.Release()
		}
		return time.Since(t0), nil
	}
	t0 := time.Now()
	db, err := openTiered(dir, cacheDir)
	if err != nil {
		return p, err
	}
	open := time.Since(t0)
	p.OpenMs = float64(open) / float64(time.Millisecond)
	p.WarmStart = db.WarmStart()
	first, err := runBag(db)
	if err != nil {
		return p, err
	}
	p.FirstPassMs = float64(first) / float64(time.Millisecond)
	hot := time.Duration(-1)
	for i := 0; i < coldstartHotPasses; i++ {
		d, err := runBag(db)
		if err != nil {
			return p, err
		}
		if hot < 0 || d < hot {
			hot = d
		}
	}
	p.HotPassMs = float64(hot) / float64(time.Millisecond)
	if hot > 0 {
		p.HotQPS = float64(len(bag)) / hot.Seconds()
	}
	if tax := open + first - hot; tax > 0 {
		p.TimeToHotMs = float64(tax) / float64(time.Millisecond)
	}
	if n, ok := db.SourceFetches(); ok {
		p.ArchiveFetches = n
	}
	if err := db.Close(); err != nil {
		return p, fmt.Errorf("%s: close: %w", name, err)
	}
	p.DiskCache = db.DiskCacheStats()
	return p, nil
}

// CollectColdstart measures cold-start-to-hot-QPS with and without a
// warm disk tier at the first scale factor.
func CollectColdstart(cfg Config) (*ColdstartReport, error) {
	sf := cfg.ScaleFactors[0]
	dir, _, err := cfg.Repo(sf, false)
	if err != nil {
		return nil, err
	}
	bag := mixedBag(cfg, sf)
	cacheDir := filepath.Join(cfg.WorkDir, "coldstart-cache")
	rep := &ColdstartReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		ScaleFactor:   sf,
	}
	for i := 0; i < coldstartPhaseReps; i++ {
		// Every cold rep starts from an empty directory; the last one
		// leaves the populated cache the warm reps restart against.
		if err := os.RemoveAll(cacheDir); err != nil {
			return nil, err
		}
		p, err := runColdstartPhase("cold", dir, cacheDir, bag)
		if err != nil {
			return nil, err
		}
		if i == 0 || p.TimeToHotMs < rep.Cold.TimeToHotMs {
			rep.Cold = p
		}
	}
	for i := 0; i < coldstartPhaseReps; i++ {
		p, err := runColdstartPhase("warm_restart", dir, cacheDir, bag)
		if err != nil {
			return nil, err
		}
		if i == 0 || p.TimeToHotMs < rep.Warm.TimeToHotMs {
			rep.Warm = p
		}
	}
	if !rep.Warm.WarmStart {
		return nil, fmt.Errorf("coldstart: second open was not a warm restart")
	}
	if rep.Warm.ArchiveFetches != 0 {
		return nil, fmt.Errorf("coldstart: warm restart performed %d archive fetches, want 0", rep.Warm.ArchiveFetches)
	}
	if rep.Warm.TimeToHotMs > 0 {
		rep.Speedup = rep.Cold.TimeToHotMs / rep.Warm.TimeToHotMs
	}
	return rep, nil
}

// WriteColdstartJSON collects the cold-start report and writes it as
// indented JSON to path.
func WriteColdstartJSON(cfg Config, path string) error {
	m, err := CollectColdstart(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
