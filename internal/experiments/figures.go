package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sommelier/internal/registrar"
)

// LoadingRow is one bar of Figure 6: the preparation cost breakdown of
// one approach at one scale factor.
type LoadingRow struct {
	SF            int
	Approach      registrar.Approach
	Metadata      time.Duration // registrar: GMd extraction + load
	MseedToCSV    time.Duration
	CSVToDB       time.Duration
	MseedToDB     time.Duration
	Indexing      time.Duration
	DMdDerivation time.Duration
	Total         time.Duration
}

// Fig6 measures the initial investment of every loading approach.
func Fig6(cfg Config) ([]LoadingRow, error) {
	var rows []LoadingRow
	for _, sf := range cfg.ScaleFactors {
		dir, _, err := cfg.Repo(sf, false)
		if err != nil {
			return nil, err
		}
		for _, app := range registrar.Approaches() {
			db, err := openDB(dir, app)
			if err != nil {
				return nil, fmt.Errorf("fig6 sf-%d %s: %w", sf, app, err)
			}
			rep := db.Report()
			rows = append(rows, LoadingRow{
				SF:            sf,
				Approach:      app,
				Metadata:      rep.MetadataTime,
				MseedToCSV:    rep.Breakdown.MseedToCSV,
				CSVToDB:       rep.Breakdown.CSVToDB,
				MseedToDB:     rep.Breakdown.MseedToDB,
				Indexing:      rep.Breakdown.Indexing,
				DMdDerivation: rep.Breakdown.DMdDerivation,
				Total:         rep.TotalTime(),
			})
		}
	}
	return rows, nil
}

// QueryPerfRow is one point of Figure 7: single-query performance of
// one query type on one approach at one scale factor, cold and hot.
type QueryPerfRow struct {
	SF        int
	Approach  registrar.Approach
	QueryType int
	Cold      time.Duration
	Hot       time.Duration
}

// fig7Approaches matches the paper's Figure 7 legend (eager_csv is
// indistinguishable from eager_plain after loading, so it is omitted,
// as in the paper).
func fig7Approaches() []registrar.Approach {
	return []registrar.Approach{
		registrar.EagerPlain, registrar.EagerIndex, registrar.EagerDMd, registrar.Lazy,
	}
}

// Fig7 measures representative single-query times. Each query selects
// two days of data from one station, as in §VI-C. Cold: first run on a
// freshly prepared database; hot: best of three repetitions.
func Fig7(cfg Config) ([]QueryPerfRow, error) {
	var rows []QueryPerfRow
	for _, sf := range cfg.ScaleFactors {
		dir, _, err := cfg.Repo(sf, false)
		if err != nil {
			return nil, err
		}
		start, end := cfg.span(sf)
		from := start
		to := from + 2*int64(24*time.Hour) // two days, as in §VI-C
		if to > end {
			to = end
		}
		for qt := 1; qt <= 5; qt++ {
			sql := queryOfType(qt, "FIAM", from, to)
			for _, app := range fig7Approaches() {
				db, err := openDB(dir, app)
				if err != nil {
					return nil, err
				}
				t0 := time.Now()
				res, err := db.Query(sql)
				if err != nil {
					return nil, fmt.Errorf("fig7 sf-%d %s T%d: %w", sf, app, qt, err)
				}
				cold := time.Since(t0)
				res.Release()
				hot := time.Duration(1<<62 - 1)
				for i := 0; i < 3; i++ {
					t1 := time.Now()
					res, err := db.Query(sql)
					if err != nil {
						return nil, err
					}
					if d := time.Since(t1); d < hot {
						hot = d
					}
					res.Release()
				}
				rows = append(rows, QueryPerfRow{SF: sf, Approach: app, QueryType: qt, Cold: cold, Hot: hot})
			}
		}
	}
	return rows, nil
}

// InsightRow is one point of Figure 8: preparation plus first-query
// time at one query selectivity on the single-station FIAM dataset.
type InsightRow struct {
	SF             int
	QueryType      int
	Approach       registrar.Approach
	SelectivityPct int
	Prep           time.Duration
	FirstQuery     time.Duration
}

// Total is the data-to-insight time.
func (r InsightRow) Total() time.Duration { return r.Prep + r.FirstQuery }

// fig8ScaleFactors picks the paper's sf-1 and sf-27 from the
// configured range.
func fig8ScaleFactors(cfg Config) []int {
	lo, hi := cfg.ScaleFactors[0], cfg.ScaleFactors[len(cfg.ScaleFactors)-1]
	if lo == hi {
		return []int{lo}
	}
	return []int{lo, hi}
}

// Fig8 sweeps query selectivity for T4 and T5 queries on the FIAM
// dataset: the query is the first after preparation, so the row's total
// is the data-to-insight time. Selectivity 0 rows report pure
// preparation cost.
func Fig8(cfg Config) ([]InsightRow, error) {
	var rows []InsightRow
	approaches := fig7Approaches()
	for _, sf := range fig8ScaleFactors(cfg) {
		dir, _, err := cfg.Repo(sf, true)
		if err != nil {
			return nil, err
		}
		start, end := cfg.span(sf)
		for _, qt := range []int{4, 5} {
			for _, app := range approaches {
				for _, sel := range cfg.Selectivities {
					t0 := time.Now()
					db, err := openDB(dir, app)
					if err != nil {
						return nil, err
					}
					prep := time.Since(t0)
					row := InsightRow{SF: sf, QueryType: qt, Approach: app, SelectivityPct: sel, Prep: prep}
					if sel > 0 {
						lo, hi := rangeFor(start, end, 0, float64(sel))
						sql := queryOfType(qt, "FIAM", lo, hi)
						t1 := time.Now()
						res, err := db.Query(sql)
						if err != nil {
							return nil, fmt.Errorf("fig8 sf-%d %s T%d sel=%d: %w", sf, app, qt, sel, err)
						}
						row.FirstQuery = time.Since(t1)
						res.Release()
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

// WorkloadRow is one point of Figure 9: cumulative time of a workload
// of fixed-selectivity queries spread over a fraction of the data
// space (including preparation, as the paper's 0% point shows).
type WorkloadRow struct {
	SF             int
	QueryType      int
	Approach       registrar.Approach
	WorkloadSelPct int
	NQueries       int
	Prep           time.Duration
	Workload       time.Duration
}

// Cumulative is preparation plus workload time.
func (r WorkloadRow) Cumulative() time.Duration { return r.Prep + r.Workload }

// fig9Approach pairs each query type with the best eager contender, as
// in the paper's Figure 9 (eager_dmd for T3, eager_index for T4), plus
// lazy.
func fig9Approaches(qt int) []registrar.Approach {
	if qt == 3 {
		return []registrar.Approach{registrar.EagerDMd, registrar.Lazy}
	}
	return []registrar.Approach{registrar.EagerIndex, registrar.Lazy}
}

// QuerySelectivityPct is the fixed per-query selectivity of Figure 9.
const QuerySelectivityPct = 2.5

// Fig9 replays workloads of n queries with 2.5% query selectivity,
// randomly placed over the leading workloadSel percent of the data
// space (fully covering it), on the FIAM dataset.
func Fig9(cfg Config) ([]WorkloadRow, error) {
	var rows []WorkloadRow
	for _, sf := range fig8ScaleFactors(cfg) {
		dir, _, err := cfg.Repo(sf, true)
		if err != nil {
			return nil, err
		}
		start, end := cfg.span(sf)
		for _, qt := range []int{3, 4} {
			for _, app := range fig9Approaches(qt) {
				for _, wsel := range cfg.Selectivities {
					for _, n := range cfg.WorkloadSizes {
						rng := rand.New(rand.NewSource(cfg.Seed + int64(wsel*1000+n)))
						t0 := time.Now()
						db, err := openDB(dir, app)
						if err != nil {
							return nil, err
						}
						prep := time.Since(t0)
						row := WorkloadRow{
							SF: sf, QueryType: qt, Approach: app,
							WorkloadSelPct: wsel, NQueries: n, Prep: prep,
						}
						if wsel > 0 {
							t1 := time.Now()
							for i := 0; i < n; i++ {
								// Random placement over the workload
								// space, with full coverage ensured by
								// striding the first ⌈w/q⌉ queries.
								maxOff := float64(wsel) - QuerySelectivityPct
								if maxOff < 0 {
									maxOff = 0
								}
								var off float64
								stride := int(float64(wsel)/QuerySelectivityPct) + 1
								if i < stride {
									off = float64(i) * QuerySelectivityPct
									if off > maxOff {
										off = maxOff
									}
								} else {
									off = rng.Float64() * maxOff
								}
								lo, hi := rangeFor(start, end, off, QuerySelectivityPct)
								sql := queryOfType(qt, "FIAM", lo, hi)
								res, err := db.Query(sql)
								if err != nil {
									return nil, fmt.Errorf("fig9 sf-%d %s T%d w=%d: %w", sf, app, qt, wsel, err)
								}
								res.Release()
							}
							row.Workload = time.Since(t1)
						}
						rows = append(rows, row)
					}
				}
			}
		}
	}
	return rows, nil
}
