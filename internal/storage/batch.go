package storage

import "fmt"

// BatchSize is the default number of rows exchanged between operators.
const BatchSize = 4096

// Batch is a set of equally long columns: the unit of data flow between
// physical operators.
type Batch struct {
	Cols []Column
}

// NewBatch wraps columns into a batch, verifying equal lengths.
func NewBatch(cols ...Column) *Batch {
	b := &Batch{Cols: cols}
	n := b.Len()
	for _, c := range cols {
		if c.Len() != n {
			panic(fmt.Sprintf("storage: ragged batch: %d vs %d", c.Len(), n))
		}
	}
	return b
}

// Len reports the number of rows, zero for an empty batch.
func (b *Batch) Len() int {
	if b == nil || len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Width reports the number of columns.
func (b *Batch) Width() int {
	if b == nil {
		return 0
	}
	return len(b.Cols)
}

// Slice returns rows [lo, hi) of all columns, sharing storage.
func (b *Batch) Slice(lo, hi int) *Batch {
	cols := make([]Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Slice(lo, hi)
	}
	return &Batch{Cols: cols}
}

// Gather returns a new batch with the rows at idx, in order.
func (b *Batch) Gather(idx []int32) *Batch {
	cols := make([]Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Gather(idx)
	}
	return &Batch{Cols: cols}
}

// MemSize estimates the heap footprint of the batch in bytes.
func (b *Batch) MemSize() int64 {
	var n int64
	for _, c := range b.Cols {
		n += c.MemSize()
	}
	return n
}

// Relation is a fully materialized sequence of batches with a fixed
// width; the in-memory representation of a table column set or an
// operator result.
type Relation struct {
	batches []*Batch
	rows    int
}

// NewRelation returns an empty relation.
func NewRelation() *Relation { return &Relation{} }

// Append adds a batch; empty batches are ignored.
func (r *Relation) Append(b *Batch) {
	if b.Len() == 0 {
		return
	}
	if len(r.batches) > 0 && r.batches[0].Width() != b.Width() {
		panic(fmt.Sprintf("storage: relation width mismatch: %d vs %d", r.batches[0].Width(), b.Width()))
	}
	r.batches = append(r.batches, b)
	r.rows += b.Len()
}

// Batches returns the underlying batches. Callers must not modify them.
func (r *Relation) Batches() []*Batch { return r.batches }

// Rows reports the total number of rows.
func (r *Relation) Rows() int { return r.rows }

// MemSize estimates the heap footprint of all batches in bytes.
func (r *Relation) MemSize() int64 {
	var n int64
	for _, b := range r.batches {
		n += b.MemSize()
	}
	return n
}

// Flatten concatenates all batches into one. It is used where an
// operator (hash join build, sort) needs random access to a whole input.
func (r *Relation) Flatten() *Batch {
	if len(r.batches) == 0 {
		return &Batch{}
	}
	if len(r.batches) == 1 {
		return r.batches[0]
	}
	width := r.batches[0].Width()
	builders := make([]Builder, width)
	for i := 0; i < width; i++ {
		builders[i] = NewBuilder(r.batches[0].Cols[i].Kind(), r.rows)
	}
	for _, b := range r.batches {
		for ci, c := range b.Cols {
			n := c.Len()
			for ri := 0; ri < n; ri++ {
				builders[ci].AppendFrom(c, ri)
			}
		}
	}
	cols := make([]Column, width)
	for i, bl := range builders {
		cols[i] = bl.Finish()
	}
	return NewBatch(cols...)
}
