package storage

import (
	"fmt"
	"sync/atomic"
)

// BatchSize is the default number of rows exchanged between operators.
const BatchSize = 4096

// Batch is a set of equally long columns: the unit of data flow between
// physical operators.
//
// A batch may additionally carry a deferred selection vector: an
// ascending list of surviving row indexes into the base columns. Such a
// batch represents the selected rows without having copied them;
// Len reports the selected count, and Materialize performs the deferred
// Gather. Selection-aware operators (Filter, the specialized hash join
// and group-by) take ownership of the vector with DetachSel, read the
// base columns directly, and avoid the copy entirely. A batch carrying a selection is owned by its single
// downstream consumer, which either materializes it or detaches the
// vector; the vector is recycled into the selection pool at that point.
type Batch struct {
	Cols []Column
	sel  []int32 // deferred selection; nil selects all rows
	// pooled marks a header owned by the batch pool (pool.go). The flag
	// follows the linear owner through WithSel/DetachSel/Materialize so
	// exactly one holder ever recycles it.
	pooled bool
}

// NewBatch wraps columns into a batch, verifying equal lengths.
func NewBatch(cols ...Column) *Batch {
	b := &Batch{Cols: cols}
	n := b.Len()
	for _, c := range cols {
		if c.Len() != n {
			panic(fmt.Sprintf("storage: ragged batch: %d vs %d", c.Len(), n))
		}
	}
	return b
}

// WithSel returns a batch sharing b's columns with the given deferred
// selection attached. b must not already carry a selection. The
// returned batch takes ownership of sel.
func (b *Batch) WithSel(sel []int32) *Batch {
	if b.sel != nil {
		panic("storage: WithSel on a batch already carrying a selection")
	}
	if b.pooled {
		// Reuse the pooled header in place: b and the returned batch are
		// the same owner.
		b.sel = sel
		return b
	}
	return &Batch{Cols: b.Cols, sel: sel}
}

// Sel returns the deferred selection vector, nil when the batch is
// contiguous. Callers must not modify or retain it past the batch; to
// consume it, use DetachSel.
func (b *Batch) Sel() []int32 { return b.sel }

// DetachSel strips and returns the deferred selection, transferring
// ownership (and the duty to PutSel) to the caller; b must not be used
// afterwards — use the returned base batch instead. b's own selection
// reference is cleared, so a stray later use of b cannot reach the
// detached (and possibly re-pooled) vector.
func (b *Batch) DetachSel() (*Batch, []int32) {
	sel := b.sel
	if sel == nil {
		return b, nil
	}
	b.sel = nil
	if b.pooled {
		// The pooled header stays with its single owner.
		return b, sel
	}
	return &Batch{Cols: b.Cols}, sel
}

// Materialize resolves a deferred selection by gathering the selected
// rows, recycling the selection vector (and clearing b's reference to
// it, so a stray second use of b cannot reach pooled memory).
// Contiguous batches are returned unchanged. Because selections are
// ascending subsets, a selection as long as the base is the identity
// and resolves without copying.
func (b *Batch) Materialize() *Batch {
	if b.sel == nil {
		return b
	}
	sel := b.sel
	b.sel = nil
	if len(sel) == b.baseLen() {
		PutSel(sel)
		if b.pooled {
			return b
		}
		return &Batch{Cols: b.Cols}
	}
	cols := make([]Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Gather(sel)
	}
	PutSel(sel)
	// The gathered copy replaces the base: recycle the (now dead)
	// pooled base columns and header, if any.
	PutBatch(b)
	return &Batch{Cols: cols}
}

// baseLen is the row count of the base columns, ignoring any selection.
func (b *Batch) baseLen() int {
	if b == nil || len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Len reports the number of rows — the selected count when a deferred
// selection is attached — and zero for an empty batch.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	if b.sel != nil {
		return len(b.sel)
	}
	return b.baseLen()
}

// Width reports the number of columns.
func (b *Batch) Width() int {
	if b == nil {
		return 0
	}
	return len(b.Cols)
}

// Slice returns rows [lo, hi) of all columns, sharing storage. A
// deferred selection is materialized first.
func (b *Batch) Slice(lo, hi int) *Batch {
	b = b.Materialize()
	cols := make([]Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Slice(lo, hi)
	}
	return &Batch{Cols: cols}
}

// Gather returns a new batch with the rows at idx, in order. A deferred
// selection is materialized first.
func (b *Batch) Gather(idx []int32) *Batch {
	b = b.Materialize()
	cols := make([]Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = c.Gather(idx)
	}
	return &Batch{Cols: cols}
}

// MemSize estimates the heap footprint of the batch in bytes.
func (b *Batch) MemSize() int64 {
	var n int64
	for _, c := range b.Cols {
		n += c.MemSize()
	}
	return n
}

// Relation is a fully materialized sequence of batches with a fixed
// width; the in-memory representation of a table column set or an
// operator result. Batches stored in a relation are always contiguous:
// Append materializes any deferred selection.
type Relation struct {
	batches []*Batch
	rows    int
	// zones caches per-batch min/max bounds of the int64/time columns
	// (small materialized aggregates), computed lazily on first use and
	// shared by every scan of the relation. Relations follow a build
	// phase (appends) then a read phase (scans); the pointer swap makes
	// concurrent first readers race only on identical recomputation.
	zones atomic.Pointer[[][]Zone]
}

// Zone is the [Min, Max] bound of one int64/time column over one batch.
// Ok marks columns the bound applies to; other kinds carry Ok=false.
type Zone struct {
	Min, Max int64
	Ok       bool
}

// Disjoint reports that no value in the zone can fall within [lo, hi]:
// the batch-skipping test. An invalid zone is never disjoint.
func (z Zone) Disjoint(lo, hi int64) bool {
	return z.Ok && (z.Max < lo || z.Min > hi)
}

// NewRelation returns an empty relation.
func NewRelation() *Relation { return &Relation{} }

// NewRelationWithCap returns an empty relation pre-sized for about
// nBatches appends, so draining a stream of known length does not
// re-grow the batch slice.
func NewRelationWithCap(nBatches int) *Relation {
	if nBatches <= 0 {
		return &Relation{}
	}
	return &Relation{batches: make([]*Batch, 0, nBatches)}
}

// Append adds a batch, materializing any deferred selection; empty
// batches are ignored.
func (r *Relation) Append(b *Batch) {
	if b.Len() == 0 {
		return
	}
	b = b.Materialize()
	if len(r.batches) > 0 && r.batches[0].Width() != b.Width() {
		panic(fmt.Sprintf("storage: relation width mismatch: %d vs %d", r.batches[0].Width(), b.Width()))
	}
	r.batches = append(r.batches, b)
	r.rows += b.Len()
}

// Zone returns the cached min/max bound of column col over batch i,
// computing the relation's zone maps on first use. Bounds exist for
// int64 and time columns; other kinds return Ok=false. The computation
// is incremental: a relation cloned from a snapshot (CloneForAppend)
// inherits the parent's cached bounds and only the appended tail
// batches are ever scanned.
func (r *Relation) Zone(i, col int) Zone {
	zp := r.zones.Load()
	if zp == nil || len(*zp) < len(r.batches) {
		z := extendZones(zp, r.batches)
		r.zones.Store(&z)
		zp = &z
	}
	zs := (*zp)[i]
	if col >= len(zs) {
		return Zone{}
	}
	return zs[col]
}

// CloneForAppend returns a new relation over the same batches with room
// for extra appends, inheriting the receiver's cached zone maps: the
// copy-on-write growth path of metadata tables, where each append used
// to recompute every batch bound from scratch. The inherited cache is
// shared read-only; extending it builds a fresh slice.
func (r *Relation) CloneForAppend(extra int) *Relation {
	nd := &Relation{rows: r.rows, batches: make([]*Batch, len(r.batches), len(r.batches)+extra)}
	copy(nd.batches, r.batches)
	if zp := r.zones.Load(); zp != nil {
		nd.zones.Store(zp)
	}
	return nd
}

// zoneComputed counts batches whose bounds were computed (not
// inherited); the incremental-inheritance tests read it.
var zoneComputed atomic.Int64

// ZoneComputations reports how many per-batch zone computations have
// run process-wide. Intended for tests.
func ZoneComputations() int64 { return zoneComputed.Load() }

// ColumnZone computes the min/max bound of an int64/time column; other
// kinds (and empty columns) report Ok=false. It is the single bounds
// routine behind both the relation's batch-level zone maps and the
// index package's chunk-level zone maps.
func ColumnZone(c Column) Zone {
	switch c.Kind() {
	case KindInt64, KindTime:
	default:
		return Zone{}
	}
	vals := Int64s(c)
	if len(vals) == 0 {
		return Zone{}
	}
	z := Zone{Min: vals[0], Max: vals[0], Ok: true}
	for _, v := range vals[1:] {
		if v < z.Min {
			z.Min = v
		}
		if v > z.Max {
			z.Max = v
		}
	}
	return z
}

// extendZones computes bounds for the batches beyond the cached prefix,
// reusing the prefix entries (per-batch bound slices are immutable once
// stored, so sharing across snapshots is safe).
func extendZones(prev *[][]Zone, batches []*Batch) [][]Zone {
	done := 0
	if prev != nil && len(*prev) <= len(batches) {
		done = len(*prev)
	}
	zones := make([][]Zone, len(batches))
	if done > 0 {
		copy(zones, (*prev)[:done])
	}
	for bi := done; bi < len(batches); bi++ {
		b := batches[bi]
		zs := make([]Zone, len(b.Cols))
		for ci, c := range b.Cols {
			zs[ci] = ColumnZone(c)
		}
		zones[bi] = zs
		zoneComputed.Add(1)
	}
	return zones
}

// Batches returns the underlying batches. Callers must not modify them.
func (r *Relation) Batches() []*Batch { return r.batches }

// TakeBatches removes and returns the relation's batches without
// releasing them: ownership of every batch moves to the caller and the
// relation is left empty (reusable or recyclable via PutRelation). The
// streaming drain uses it to move coalesced batches out of its scratch
// buffers and into the sink.
func (r *Relation) TakeBatches() []*Batch {
	bs := r.batches
	r.batches = nil
	r.rows = 0
	r.zones.Store(nil)
	return bs
}

// Rows reports the total number of rows.
func (r *Relation) Rows() int { return r.rows }

// MemSize estimates the heap footprint of all batches in bytes.
func (r *Relation) MemSize() int64 {
	var n int64
	for _, b := range r.batches {
		n += b.MemSize()
	}
	return n
}

// Flatten concatenates all batches into one. It is used where an
// operator (hash join build, sort) needs random access to a whole input.
func (r *Relation) Flatten() *Batch {
	if len(r.batches) == 0 {
		return &Batch{}
	}
	if len(r.batches) == 1 {
		return r.batches[0]
	}
	width := r.batches[0].Width()
	builders := make([]Builder, width)
	for i := 0; i < width; i++ {
		builders[i] = NewBuilder(r.batches[0].Cols[i].Kind(), r.rows)
	}
	for _, b := range r.batches {
		for ci, c := range b.Cols {
			n := c.Len()
			for ri := 0; ri < n; ri++ {
				builders[ci].AppendFrom(c, ri)
			}
		}
	}
	cols := make([]Column, width)
	for i, bl := range builders {
		cols[i] = bl.Finish()
	}
	return NewBatch(cols...)
}
