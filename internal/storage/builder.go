package storage

import "fmt"

// Builder accumulates values of one kind and produces an immutable Column.
type Builder interface {
	// Kind reports the type of column being built.
	Kind() Kind
	// Len reports the number of values appended so far.
	Len() int
	// AppendAny appends a value of the builder's kind; it panics on a
	// type mismatch. Typed builders expose faster Append methods.
	AppendAny(v any)
	// AppendFrom appends the i-th value of col, which must have the
	// builder's kind.
	AppendFrom(col Column, i int)
	// AppendSel appends the rows of col named by the selection vector,
	// in order. col must have the builder's kind. Typed builders
	// implement it as one tight loop over the backing slice.
	AppendSel(col Column, sel []int32)
	// AppendAll appends every row of col, which must have the builder's
	// kind; typed builders implement it as one bulk copy.
	AppendAll(col Column)
	// Finish returns the built column and resets the builder.
	Finish() Column
	// Reset re-arms the builder with fresh backing capacity after a
	// Finish, reusing the builder value itself.
	Reset(capacity int)
}

// appendSel bulk-appends the selected rows of src to dst: one capacity
// check, then a tight index-write loop, matching Gather's speed.
func appendSel[T int64 | float64 | bool](dst, src []T, sel []int32) []T {
	n := len(dst)
	need := n + len(sel)
	if cap(dst) < need {
		grown := make([]T, n, max(need, 2*cap(dst)))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	for k, i := range sel {
		dst[n+k] = src[i]
	}
	return dst
}

// NewBuilder returns a builder for the given kind with capacity cap.
func NewBuilder(k Kind, capacity int) Builder {
	switch k {
	case KindInt64:
		return NewInt64Builder(capacity)
	case KindFloat64:
		return NewFloat64Builder(capacity)
	case KindBool:
		return NewBoolBuilder(capacity)
	case KindString:
		return NewStringBuilder(capacity)
	case KindTime:
		return NewTimeBuilder(capacity)
	default:
		panic(fmt.Sprintf("storage: NewBuilder(%v)", k))
	}
}

// NewPooledBuilder is NewBuilder drawing backing arrays from the
// batch-memory pool: Reset re-arms from the pool and Finish emits a
// pooled column owned by the caller (release with PutColumn/PutBatch).
// String builders have no pooled form and fall back to NewBuilder.
func NewPooledBuilder(k Kind, capacity int) Builder {
	switch k {
	case KindInt64:
		return &Int64Builder{vals: int64Slices.get(capacity), pooled: true}
	case KindFloat64:
		return &Float64Builder{vals: float64Slices.get(capacity), pooled: true}
	case KindBool:
		return &BoolBuilder{vals: boolSlices.get(capacity), pooled: true}
	case KindTime:
		return &TimeBuilder{vals: int64Slices.get(capacity), pooled: true}
	default:
		return NewBuilder(k, capacity)
	}
}

// Int64Builder builds Int64Columns.
type Int64Builder struct {
	vals   []int64
	pooled bool
}

// NewInt64Builder returns a builder with the given capacity.
func NewInt64Builder(capacity int) *Int64Builder {
	return &Int64Builder{vals: make([]int64, 0, capacity)}
}

// Kind implements Builder.
func (b *Int64Builder) Kind() Kind { return KindInt64 }

// Len implements Builder.
func (b *Int64Builder) Len() int { return len(b.vals) }

// Append appends v.
func (b *Int64Builder) Append(v int64) { b.vals = append(b.vals, v) }

// AppendAny implements Builder.
func (b *Int64Builder) AppendAny(v any) { b.vals = append(b.vals, v.(int64)) }

// AppendFrom implements Builder.
func (b *Int64Builder) AppendFrom(col Column, i int) {
	b.vals = append(b.vals, col.(*Int64Column).vals[i])
}

// AppendSel implements Builder.
func (b *Int64Builder) AppendSel(col Column, sel []int32) {
	b.vals = appendSel(b.vals, col.(*Int64Column).vals, sel)
}

// AppendAll implements Builder.
func (b *Int64Builder) AppendAll(col Column) {
	b.vals = append(b.vals, col.(*Int64Column).vals...)
}

// Reset implements Builder.
func (b *Int64Builder) Reset(capacity int) {
	if b.pooled {
		b.vals = int64Slices.get(capacity)
		return
	}
	b.vals = make([]int64, 0, capacity)
}

// Finish implements Builder.
func (b *Int64Builder) Finish() Column {
	var c Column
	if b.pooled && pooling.Load() {
		c = pooledInt64Col(b.vals, false)
	} else {
		c = &Int64Column{vals: b.vals}
	}
	b.vals = nil
	return c
}

// TimeBuilder builds TimeColumns (int64 nanoseconds since epoch).
type TimeBuilder struct {
	vals   []int64
	pooled bool
}

// NewTimeBuilder returns a builder with the given capacity.
func NewTimeBuilder(capacity int) *TimeBuilder {
	return &TimeBuilder{vals: make([]int64, 0, capacity)}
}

// Kind implements Builder.
func (b *TimeBuilder) Kind() Kind { return KindTime }

// Len implements Builder.
func (b *TimeBuilder) Len() int { return len(b.vals) }

// Append appends a timestamp in nanoseconds since epoch.
func (b *TimeBuilder) Append(ns int64) { b.vals = append(b.vals, ns) }

// AppendAny implements Builder.
func (b *TimeBuilder) AppendAny(v any) { b.vals = append(b.vals, v.(int64)) }

// AppendFrom implements Builder.
func (b *TimeBuilder) AppendFrom(col Column, i int) {
	b.vals = append(b.vals, col.(*TimeColumn).vals[i])
}

// AppendSel implements Builder.
func (b *TimeBuilder) AppendSel(col Column, sel []int32) {
	b.vals = appendSel(b.vals, col.(*TimeColumn).vals, sel)
}

// AppendAll implements Builder.
func (b *TimeBuilder) AppendAll(col Column) {
	b.vals = append(b.vals, col.(*TimeColumn).vals...)
}

// Reset implements Builder.
func (b *TimeBuilder) Reset(capacity int) {
	if b.pooled {
		b.vals = int64Slices.get(capacity)
		return
	}
	b.vals = make([]int64, 0, capacity)
}

// Finish implements Builder.
func (b *TimeBuilder) Finish() Column {
	var c Column
	if b.pooled && pooling.Load() {
		c = pooledInt64Col(b.vals, true)
	} else {
		c = &TimeColumn{vals: b.vals}
	}
	b.vals = nil
	return c
}

// Float64Builder builds Float64Columns.
type Float64Builder struct {
	vals   []float64
	pooled bool
}

// NewFloat64Builder returns a builder with the given capacity.
func NewFloat64Builder(capacity int) *Float64Builder {
	return &Float64Builder{vals: make([]float64, 0, capacity)}
}

// Kind implements Builder.
func (b *Float64Builder) Kind() Kind { return KindFloat64 }

// Len implements Builder.
func (b *Float64Builder) Len() int { return len(b.vals) }

// Append appends v.
func (b *Float64Builder) Append(v float64) { b.vals = append(b.vals, v) }

// AppendAny implements Builder.
func (b *Float64Builder) AppendAny(v any) { b.vals = append(b.vals, v.(float64)) }

// AppendFrom implements Builder.
func (b *Float64Builder) AppendFrom(col Column, i int) {
	b.vals = append(b.vals, col.(*Float64Column).vals[i])
}

// AppendSel implements Builder.
func (b *Float64Builder) AppendSel(col Column, sel []int32) {
	b.vals = appendSel(b.vals, col.(*Float64Column).vals, sel)
}

// AppendAll implements Builder.
func (b *Float64Builder) AppendAll(col Column) {
	b.vals = append(b.vals, col.(*Float64Column).vals...)
}

// Reset implements Builder.
func (b *Float64Builder) Reset(capacity int) {
	if b.pooled {
		b.vals = float64Slices.get(capacity)
		return
	}
	b.vals = make([]float64, 0, capacity)
}

// Finish implements Builder.
func (b *Float64Builder) Finish() Column {
	var c Column
	if b.pooled && pooling.Load() {
		c = pooledFloat64Col(b.vals)
	} else {
		c = &Float64Column{vals: b.vals}
	}
	b.vals = nil
	return c
}

// BoolBuilder builds BoolColumns.
type BoolBuilder struct {
	vals   []bool
	pooled bool
}

// NewBoolBuilder returns a builder with the given capacity.
func NewBoolBuilder(capacity int) *BoolBuilder {
	return &BoolBuilder{vals: make([]bool, 0, capacity)}
}

// Kind implements Builder.
func (b *BoolBuilder) Kind() Kind { return KindBool }

// Len implements Builder.
func (b *BoolBuilder) Len() int { return len(b.vals) }

// Append appends v.
func (b *BoolBuilder) Append(v bool) { b.vals = append(b.vals, v) }

// AppendAny implements Builder.
func (b *BoolBuilder) AppendAny(v any) { b.vals = append(b.vals, v.(bool)) }

// AppendFrom implements Builder.
func (b *BoolBuilder) AppendFrom(col Column, i int) {
	b.vals = append(b.vals, col.(*BoolColumn).vals[i])
}

// AppendSel implements Builder.
func (b *BoolBuilder) AppendSel(col Column, sel []int32) {
	b.vals = appendSel(b.vals, col.(*BoolColumn).vals, sel)
}

// AppendAll implements Builder.
func (b *BoolBuilder) AppendAll(col Column) {
	b.vals = append(b.vals, col.(*BoolColumn).vals...)
}

// Reset implements Builder.
func (b *BoolBuilder) Reset(capacity int) {
	if b.pooled {
		b.vals = boolSlices.get(capacity)
		return
	}
	b.vals = make([]bool, 0, capacity)
}

// Finish implements Builder.
func (b *BoolBuilder) Finish() Column {
	var c Column
	if b.pooled && pooling.Load() {
		c = pooledBoolCol(b.vals)
	} else {
		c = &BoolColumn{vals: b.vals}
	}
	b.vals = nil
	return c
}

// StringBuilder builds dictionary-encoded StringColumns.
type StringBuilder struct {
	dict  []string
	index map[string]int32
	codes []int32
}

// NewStringBuilder returns a builder with the given capacity.
func NewStringBuilder(capacity int) *StringBuilder {
	return &StringBuilder{
		index: make(map[string]int32),
		codes: make([]int32, 0, capacity),
	}
}

// Kind implements Builder.
func (b *StringBuilder) Kind() Kind { return KindString }

// Len implements Builder.
func (b *StringBuilder) Len() int { return len(b.codes) }

// Append appends v, extending the dictionary if necessary.
func (b *StringBuilder) Append(v string) {
	code, ok := b.index[v]
	if !ok {
		code = int32(len(b.dict))
		b.dict = append(b.dict, v)
		b.index[v] = code
	}
	b.codes = append(b.codes, code)
}

// AppendAny implements Builder.
func (b *StringBuilder) AppendAny(v any) { b.Append(v.(string)) }

// AppendFrom implements Builder.
func (b *StringBuilder) AppendFrom(col Column, i int) {
	b.Append(col.(*StringColumn).Value(i))
}

// AppendSel implements Builder.
func (b *StringBuilder) AppendSel(col Column, sel []int32) {
	sc := col.(*StringColumn)
	for _, i := range sel {
		b.Append(sc.Value(int(i)))
	}
}

// AppendAll implements Builder.
func (b *StringBuilder) AppendAll(col Column) {
	sc := col.(*StringColumn)
	for i := 0; i < sc.Len(); i++ {
		b.Append(sc.Value(i))
	}
}

// Reset implements Builder.
func (b *StringBuilder) Reset(capacity int) {
	b.dict = nil
	b.index = make(map[string]int32)
	b.codes = make([]int32, 0, capacity)
}

// Finish implements Builder.
func (b *StringBuilder) Finish() Column { return b.FinishString() }

// FinishString returns the built column with its concrete type.
func (b *StringBuilder) FinishString() *StringColumn {
	c := &StringColumn{dict: b.dict, codes: b.codes}
	b.dict, b.index, b.codes = nil, nil, nil
	return c
}
