package storage

import "sync"

// A selection vector is an ascending list of row indexes into the base
// columns of a batch: the MonetDB/X100 representation of a filter
// result. Operators pass selection vectors instead of eagerly gathering
// surviving rows, deferring the copy until an operator truly needs
// contiguous output (Batch.Materialize).
//
// Selection vectors are pooled: the filter/join hot path would
// otherwise allocate one per batch per operator. Ownership is linear —
// whoever detaches or consumes a vector returns it with PutSel; a
// vector attached to a batch is returned by Materialize.

// selPool recycles selection vectors (and the join's gather scratch,
// which has the same shape); boxPool recycles the *[]int32 boxes that
// carry them through the pool, so a Get/Put cycle allocates nothing in
// steady state (a bare Put(&s) would heap-allocate the slice header).
var (
	selPool sync.Pool // holds *[]int32 with non-nil backing arrays
	boxPool sync.Pool // holds empty *[]int32 boxes
)

// GetSel returns an empty selection vector with capacity for at least
// capacity entries, drawn from the pool.
func GetSel(capacity int) []int32 {
	v := selPool.Get()
	if v == nil {
		if capacity < BatchSize {
			capacity = BatchSize
		}
		return make([]int32, 0, capacity)
	}
	p := v.(*[]int32)
	s := (*p)[:0]
	*p = nil
	boxPool.Put(p)
	if cap(s) < capacity {
		return make([]int32, 0, capacity)
	}
	return s
}

// PutSel returns a selection vector to the pool. Passing nil or a
// zero-capacity slice is a no-op. The caller must not use s afterwards.
func PutSel(s []int32) {
	if cap(s) == 0 {
		return
	}
	var p *[]int32
	if v := boxPool.Get(); v != nil {
		p = v.(*[]int32)
	} else {
		p = new([]int32)
	}
	*p = s
	selPool.Put(p)
}

// IdentitySel writes the identity selection [0, n) into a pooled
// vector: every row selected, in order.
func IdentitySel(n int) []int32 {
	s := GetSel(n)
	for i := 0; i < n; i++ {
		s = append(s, int32(i))
	}
	return s
}
