package storage

import "testing"

func TestBatchWithSel(t *testing.T) {
	b := NewBatch(
		NewInt64Column([]int64{10, 20, 30, 40}),
		NewStringColumn([]string{"a", "b", "c", "d"}),
	)
	sb := b.WithSel([]int32{1, 3})
	if sb.Len() != 2 {
		t.Fatalf("selected Len = %d, want 2", sb.Len())
	}
	if b.Len() != 4 {
		t.Fatalf("base batch mutated: Len = %d", b.Len())
	}
	m := sb.Materialize()
	if m.Len() != 2 || Int64s(m.Cols[0])[0] != 20 || Int64s(m.Cols[0])[1] != 40 {
		t.Fatalf("materialized = %v", Int64s(m.Cols[0]))
	}
	if m.Sel() != nil {
		t.Fatal("materialized batch still carries a selection")
	}

	// A full-length selection is the identity and must not copy.
	full := b.WithSel([]int32{0, 1, 2, 3})
	fm := full.Materialize()
	if fm.Cols[0] != b.Cols[0] {
		t.Fatal("identity selection copied the columns")
	}
}

func TestRelationAppendMaterializes(t *testing.T) {
	r := NewRelation()
	b := NewBatch(NewInt64Column([]int64{1, 2, 3, 4, 5}))
	r.Append(b.WithSel(GetSel(5)[:0]))
	if r.Rows() != 0 {
		t.Fatalf("empty selection appended %d rows", r.Rows())
	}
	sel := GetSel(2)
	sel = append(sel, 0, 4)
	r.Append(b.WithSel(sel))
	if r.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", r.Rows())
	}
	if got := Int64s(r.Batches()[0].Cols[0]); got[0] != 1 || got[1] != 5 {
		t.Fatalf("materialized rows = %v", got)
	}
	if r.Batches()[0].Sel() != nil {
		t.Fatal("relation stored a batch with a pending selection")
	}
}

func TestRelationZones(t *testing.T) {
	r := NewRelation()
	r.Append(NewBatch(NewInt64Column([]int64{5, 1, 9}), NewStringColumn([]string{"x", "y", "z"})))
	r.Append(NewBatch(NewInt64Column([]int64{100, 200, 150}), NewStringColumn([]string{"x", "x", "x"})))
	z := r.Zone(0, 0)
	if !z.Ok || z.Min != 1 || z.Max != 9 {
		t.Fatalf("zone(0,0) = %+v", z)
	}
	z = r.Zone(1, 0)
	if !z.Ok || z.Min != 100 || z.Max != 200 {
		t.Fatalf("zone(1,0) = %+v", z)
	}
	if r.Zone(0, 1).Ok {
		t.Fatal("string column reported a numeric zone")
	}
	if !r.Zone(1, 0).Disjoint(0, 99) {
		t.Fatal("zone [100,200] should be disjoint from [0,99]")
	}
	if r.Zone(1, 0).Disjoint(150, 300) {
		t.Fatal("zone [100,200] overlaps [150,300]")
	}
}

func TestSelPoolRoundTrip(t *testing.T) {
	s := GetSel(10)
	if len(s) != 0 || cap(s) < 10 {
		t.Fatalf("GetSel: len=%d cap=%d", len(s), cap(s))
	}
	s = append(s, 1, 2, 3)
	PutSel(s)
	PutSel(nil) // no-op
	id := IdentitySel(4)
	for i, v := range id {
		if v != int32(i) {
			t.Fatalf("identity[%d] = %d", i, v)
		}
	}
	PutSel(id)
}
