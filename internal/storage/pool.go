package storage

// Batch/column memory pooling: the batch-lifecycle extension of the
// selection-vector pools in sel.go. Hot queries used to allocate every
// output column, batch header and accumulator per execution; with the
// pools, a steady-state hot query draws the same memory it released on
// the previous execution.
//
// Ownership is linear, mirroring the selection-vector rules:
//
//  1. A pooled column (or batch of pooled columns) has exactly one
//     owner at a time. Producers — pooled builders, GatherPooled, the
//     fused pipeline, the join probe — create it owned by their
//     consumer.
//  2. The owner either consumes it (fold/probe → PutBatch), hands it
//     off (emit downstream, store into a Relation — the relation then
//     owns it), or releases it (PutColumn/PutBatch).
//  3. Whoever owns the final drained Relation calls Release when the
//     rows are no longer referenced; Release recycles owned pooled
//     memory and is a no-op on shared (unpooled) batches.
//
// Dropping pooled memory without a Put is safe — the GC collects it —
// but it shows up in Outstanding, which the leak tests pin to zero
// around complete query lifecycles.

import (
	"sync"
	"sync/atomic"
)

// pooling is the global pooling switch; the differential tests disable
// it to prove pooled and unpooled execution return identical rows.
var pooling atomic.Bool

func init() { pooling.Store(true) }

// SetPooling toggles batch/column pooling globally (selection-vector
// pooling is unaffected). With pooling off, producers allocate fresh
// unpooled memory and every Put is a no-op. Intended for tests.
func SetPooling(on bool) { pooling.Store(on) }

// PoolingEnabled reports the current switch.
func PoolingEnabled() bool { return pooling.Load() }

// outstanding counts pooled columns and batch headers currently checked
// out (created and not yet recycled). It returns to zero when every
// pooled object of a completed workload has been released.
var outstanding atomic.Int64

// Outstanding reports the number of pooled objects currently live.
func Outstanding() int64 { return outstanding.Load() }

// slicePool recycles backing arrays of one element type, boxed to keep
// the Get/Put cycle allocation-free (as in sel.go).
type slicePool[T any] struct {
	slices sync.Pool // holds *[]T with non-nil backing
	boxes  sync.Pool // holds empty *[]T boxes
}

func (p *slicePool[T]) get(capacity int) []T {
	if capacity < BatchSize {
		capacity = BatchSize
	}
	if !pooling.Load() {
		return make([]T, 0, capacity)
	}
	v := p.slices.Get()
	if v == nil {
		return make([]T, 0, capacity)
	}
	bp := v.(*[]T)
	s := (*bp)[:0]
	*bp = nil
	p.boxes.Put(bp)
	if cap(s) < capacity {
		return make([]T, 0, capacity)
	}
	return s
}

func (p *slicePool[T]) put(s []T) {
	if cap(s) == 0 || !pooling.Load() {
		return
	}
	var bp *[]T
	if v := p.boxes.Get(); v != nil {
		bp = v.(*[]T)
	} else {
		bp = new([]T)
	}
	*bp = s[:0]
	p.slices.Put(bp)
}

var (
	int64Slices   slicePool[int64]
	float64Slices slicePool[float64]
	boolSlices    slicePool[bool]

	int64Cols   sync.Pool // *Int64Column
	timeCols    sync.Pool // *TimeColumn
	float64Cols sync.Pool // *Float64Column
	boolCols    sync.Pool // *BoolColumn
	stringCols  sync.Pool // *StringColumn
	batches     sync.Pool // *Batch with reusable Cols slice
	relations   sync.Pool // *Relation with reusable batches slice
)

// pooledInt64Col wraps vals (drawn from the pool) as an owned column.
func pooledInt64Col(vals []int64, asTime bool) Column {
	if asTime {
		c, _ := timeCols.Get().(*TimeColumn)
		if c == nil {
			c = &TimeColumn{}
		}
		c.vals, c.pooled = vals, true
		trackAcquire(c)
		return c
	}
	c, _ := int64Cols.Get().(*Int64Column)
	if c == nil {
		c = &Int64Column{}
	}
	c.vals, c.pooled = vals, true
	trackAcquire(c)
	return c
}

func pooledFloat64Col(vals []float64) Column {
	c, _ := float64Cols.Get().(*Float64Column)
	if c == nil {
		c = &Float64Column{}
	}
	c.vals, c.pooled = vals, true
	trackAcquire(c)
	return c
}

func pooledBoolCol(vals []bool) Column {
	c, _ := boolCols.Get().(*BoolColumn)
	if c == nil {
		c = &BoolColumn{}
	}
	c.vals, c.pooled = vals, true
	trackAcquire(c)
	return c
}

func pooledStringCol(dict []string, codes []int32) Column {
	c, _ := stringCols.Get().(*StringColumn)
	if c == nil {
		c = &StringColumn{}
	}
	c.dict, c.codes, c.pooled = dict, codes, true
	trackAcquire(c)
	return c
}

// PutColumn releases a pooled column: the backing array returns to its
// slice pool and the column header to its header pool. Unpooled columns
// (chunk data, shared scans) are left untouched, so callers may release
// mixed batches unconditionally. The caller must not use c afterwards.
func PutColumn(c Column) {
	if !pooling.Load() {
		return
	}
	switch c := c.(type) {
	case *Int64Column:
		if !c.pooled {
			return
		}
		trackRelease(c)
		int64Slices.put(c.vals)
		c.vals, c.pooled = nil, false
		int64Cols.Put(c)
	case *TimeColumn:
		if !c.pooled {
			return
		}
		trackRelease(c)
		int64Slices.put(c.vals)
		c.vals, c.pooled = nil, false
		timeCols.Put(c)
	case *Float64Column:
		if !c.pooled {
			return
		}
		trackRelease(c)
		float64Slices.put(c.vals)
		c.vals, c.pooled = nil, false
		float64Cols.Put(c)
	case *BoolColumn:
		if !c.pooled {
			return
		}
		trackRelease(c)
		boolSlices.put(c.vals)
		c.vals, c.pooled = nil, false
		boolCols.Put(c)
	case *StringColumn:
		if !c.pooled {
			return
		}
		trackRelease(c)
		PutSel(c.codes) // codes share the selection-vector pool shape
		c.dict, c.codes, c.pooled = nil, nil, false
		stringCols.Put(c)
	}
}

// NewPooledBatch wraps cols in a pooled batch header owned by the
// caller; recycle it (and its pooled columns) with PutBatch.
func NewPooledBatch(cols ...Column) *Batch {
	n := -1
	for _, c := range cols {
		if n < 0 {
			n = c.Len()
		} else if c.Len() != n {
			panic("storage: ragged pooled batch")
		}
	}
	if !pooling.Load() {
		// Copy like the pooled path does: callers (the coalescer, the
		// fused flush) pass a reused scratch slice that the next flush
		// overwrites.
		return &Batch{Cols: append([]Column(nil), cols...)}
	}
	b, _ := batches.Get().(*Batch)
	if b == nil {
		b = &Batch{}
	}
	b.Cols = append(b.Cols[:0], cols...)
	b.sel, b.pooled = nil, true
	trackAcquire(b)
	return b
}

// ViewWithSel attaches sel to b as its deferred selection, reusing b's
// header when pooled and otherwise wrapping b's columns in a pooled
// header: the per-batch selection views a predicated scan emits then
// recycle through the header pool instead of churning the heap. b must
// not already carry a selection.
func ViewWithSel(b *Batch, sel []int32) *Batch {
	if b.pooled || !pooling.Load() {
		return b.WithSel(sel)
	}
	if b.sel != nil {
		panic("storage: ViewWithSel on a batch already carrying a selection")
	}
	v, _ := batches.Get().(*Batch)
	if v == nil {
		v = &Batch{}
	}
	v.Cols = append(v.Cols[:0], b.Cols...)
	v.sel, v.pooled = sel, true
	trackAcquire(v)
	return v
}

// PutBatch releases a batch: every pooled column is recycled, and a
// pooled header returns to the header pool. Unpooled batches and
// columns pass through untouched. A column referenced twice in the same
// batch (SELECT a, a) is released once. The caller must not use b
// afterwards.
func PutBatch(b *Batch) {
	if b == nil || !pooling.Load() {
		return
	}
	for i, c := range b.Cols {
		if dupColumn(b.Cols[:i], c) {
			continue
		}
		PutColumn(c)
	}
	putBatchHeader(b)
}

// dupColumn reports whether c already occurs (by identity) in cols.
func dupColumn(cols []Column, c Column) bool {
	for _, p := range cols {
		if p == c {
			return true
		}
	}
	return false
}

// PutBatchExcept releases b like PutBatch but skips columns that the
// caller re-emitted downstream (identity comparison): the projection
// operator keeps the columns it aliased into its output and recycles
// the rest.
func PutBatchExcept(b *Batch, keep []Column) {
	if b == nil || !pooling.Load() {
		return
	}
	for i, c := range b.Cols {
		if dupColumn(keep, c) || dupColumn(b.Cols[:i], c) {
			continue
		}
		PutColumn(c)
	}
	putBatchHeader(b)
}

func putBatchHeader(b *Batch) {
	if !b.pooled {
		return
	}
	trackRelease(b)
	b.Cols = b.Cols[:0]
	b.sel, b.pooled = nil, false
	batches.Put(b)
}

// GatherPooled is Column.Gather into pooled memory: the returned column
// is owned by the caller. String columns fall back to a regular
// (unpooled) gather — their dictionary is shared, not pooled.
func GatherPooled(c Column, idx []int32) Column {
	if !pooling.Load() {
		return c.Gather(idx)
	}
	switch c := c.(type) {
	case *Int64Column:
		out := int64Slices.get(len(idx))[:len(idx)]
		for i, j := range idx {
			out[i] = c.vals[j]
		}
		return pooledInt64Col(out, false)
	case *TimeColumn:
		out := int64Slices.get(len(idx))[:len(idx)]
		for i, j := range idx {
			out[i] = c.vals[j]
		}
		return pooledInt64Col(out, true)
	case *Float64Column:
		out := float64Slices.get(len(idx))[:len(idx)]
		for i, j := range idx {
			out[i] = c.vals[j]
		}
		return pooledFloat64Col(out)
	case *BoolColumn:
		out := boolSlices.get(len(idx))[:len(idx)]
		for i, j := range idx {
			out[i] = c.vals[j]
		}
		return pooledBoolCol(out)
	case *StringColumn:
		out := GetSel(len(idx))[:len(idx)]
		for i, j := range idx {
			out[i] = c.codes[j]
		}
		return pooledStringCol(c.dict, out)
	default:
		return c.Gather(idx)
	}
}

// GetRelation returns an empty relation pre-sized for nBatches, drawn
// from the relation-header pool; PutRelation returns it. ParallelDrain
// uses the pair for its per-range relations, whose batches transfer to
// the reassembled output while the headers recycle.
func GetRelation(nBatches int) *Relation {
	if !pooling.Load() {
		return NewRelationWithCap(nBatches)
	}
	r, _ := relations.Get().(*Relation)
	if r == nil {
		return NewRelationWithCap(nBatches)
	}
	if cap(r.batches) < nBatches {
		r.batches = make([]*Batch, 0, nBatches)
	}
	return r
}

// PutRelation recycles a relation header whose batches have been
// transferred elsewhere (the batches themselves are NOT released).
func PutRelation(r *Relation) {
	if r == nil || !pooling.Load() {
		return
	}
	r.batches = r.batches[:0]
	r.rows = 0
	r.zones.Store(nil)
	relations.Put(r)
}

// DisownBatch removes a batch (and its columns) from pool accounting
// WITHOUT recycling: the memory stays valid indefinitely and the GC
// eventually reclaims it. Use it where batches escape into a structure
// whose lifetime the pool cannot track — the stage-one result a later
// result-scan may alias into the final output, or a flattened build
// side sharing its only batch.
func DisownBatch(b *Batch) {
	if b == nil {
		return
	}
	for _, c := range b.Cols {
		disownColumn(c)
	}
	if b.pooled {
		trackRelease(b)
		b.pooled = false
	}
}

func disownColumn(c Column) {
	switch c := c.(type) {
	case *Int64Column:
		if c.pooled {
			trackRelease(c)
			c.pooled = false
		}
	case *TimeColumn:
		if c.pooled {
			trackRelease(c)
			c.pooled = false
		}
	case *Float64Column:
		if c.pooled {
			trackRelease(c)
			c.pooled = false
		}
	case *BoolColumn:
		if c.pooled {
			trackRelease(c)
			c.pooled = false
		}
	case *StringColumn:
		if c.pooled {
			trackRelease(c)
			c.pooled = false
		}
	}
}

// Disown removes every batch of the relation from pool accounting
// without recycling (see DisownBatch). The relation remains fully
// usable.
func (r *Relation) Disown() {
	if r == nil {
		return
	}
	for _, b := range r.batches {
		DisownBatch(b)
	}
}

// Release recycles every batch of the relation (PutBatch each) and
// empties it. Only pooled batches and columns actually return to the
// pools; a relation of shared chunk batches releases nothing. The
// caller must not touch previously returned batches afterwards.
func (r *Relation) Release() {
	if r == nil {
		return
	}
	for i, b := range r.batches {
		PutBatch(b)
		r.batches[i] = nil
	}
	r.batches = r.batches[:0]
	r.rows = 0
	r.zones.Store(nil)
}
