package storage

import (
	"fmt"
	"sync/atomic"
)

// Quota is a per-query ceiling on the bytes a query may materialize
// into its own buffers: drained result relations, pipeline-breaker
// builds (sort input, hash-join build side) and the bounded run-ahead
// of the parallel streaming drain all charge against it. The global
// batch pools carry no query identity, so the ceiling is enforced at
// the boundary where batches accumulate into per-query state rather
// than inside the pool itself; transient per-batch working memory
// (one coalescer's worth per worker) is not counted.
//
// A nil *Quota means "unlimited" and every method is a no-op, so
// callers thread it unconditionally.
type Quota struct {
	limit int64
	used  atomic.Int64
}

// NewQuota returns a quota enforcing the given byte limit, or nil
// (unlimited) when limit <= 0.
func NewQuota(limit int64) *Quota {
	if limit <= 0 {
		return nil
	}
	return &Quota{limit: limit}
}

// Charge records n more bytes of per-query materialized state and
// errors with a *QuotaError once the total exceeds the limit.
// Pipeline-breaker buffers are charged and never refunded (the
// materialization must exist in full at some point, and the engine
// loses sight of result relations once handed to the caller), so for
// materialize-heavy plans the ceiling bounds cumulative
// materialization — a slight over-count of the true peak. The
// streaming drain refunds its run-ahead buffers as they are delivered,
// so a streamed scan's charge stays bounded regardless of result size.
func (q *Quota) Charge(n int64) error {
	if q == nil || n <= 0 {
		return nil
	}
	if used := q.used.Add(n); used > q.limit {
		return &QuotaError{Limit: q.limit, Used: used}
	}
	return nil
}

// Refund returns n bytes to the quota: the counterpart of Charge for
// buffers that were delivered downstream and recycled mid-query.
func (q *Quota) Refund(n int64) {
	if q == nil || n <= 0 {
		return
	}
	q.used.Add(-n)
}

// Used reports the bytes charged so far (0 on a nil quota).
func (q *Quota) Used() int64 {
	if q == nil {
		return 0
	}
	return q.used.Load()
}

// QuotaError reports that a query exceeded its memory ceiling
// (engine Config.MaxQueryBytes / sommelierd -max-query-bytes).
type QuotaError struct {
	Limit, Used int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("query memory ceiling exceeded: %d bytes materialized, limit %d", e.Used, e.Limit)
}
