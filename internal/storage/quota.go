package storage

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Quota is a per-query ceiling on the bytes a query may materialize
// into its own buffers: drained result relations, pipeline-breaker
// builds (sort input, hash-join build side) and the bounded run-ahead
// of the parallel streaming drain all charge against it. The global
// batch pools carry no query identity, so the ceiling is enforced at
// the boundary where batches accumulate into per-query state rather
// than inside the pool itself; transient per-batch working memory
// (one coalescer's worth per worker) is not counted.
//
// A quota may additionally be parented on a process-wide Governor
// (NewGovernedQuota): every charge then reserves the same bytes from
// the global pool and every refund returns them, so the sum of all
// concurrent queries' materialized state is bounded too. Close
// releases whatever the query still holds — including a streaming
// query abandoned mid-result — so the global reservation always
// returns to zero when the query ends.
//
// A nil *Quota means "unlimited" and every method is a no-op, so
// callers thread it unconditionally.
type Quota struct {
	limit int64
	used  atomic.Int64

	// Governor parenting. ctx bounds the wait for global capacity;
	// govHeld mirrors the bytes currently reserved from gov so Close
	// can return the remainder exactly once.
	gov     *Governor
	ctx     context.Context
	mu      sync.Mutex
	govHeld int64
	closed  bool
}

// NewQuota returns a quota enforcing the given byte limit, or nil
// (unlimited) when limit <= 0.
func NewQuota(limit int64) *Quota {
	if limit <= 0 {
		return nil
	}
	return &Quota{limit: limit}
}

// NewGovernedQuota returns a quota enforcing the per-query limit
// (<= 0 = no per-query ceiling) with every charge also reserved from
// g's global pool. ctx bounds how long a charge may wait for global
// capacity. Returns nil (fully unlimited) only when there is neither
// a per-query limit nor a governor: a query with no ceiling of its
// own must still be governed.
func NewGovernedQuota(ctx context.Context, limit int64, g *Governor) *Quota {
	if limit <= 0 && g == nil {
		return nil
	}
	if limit < 0 {
		limit = 0
	}
	return &Quota{limit: limit, gov: g, ctx: ctx}
}

// Charge records n more bytes of per-query materialized state and
// errors with a *QuotaError once the total exceeds the limit.
// Pipeline-breaker buffers are charged and never refunded (the
// materialization must exist in full at some point, and the engine
// loses sight of result relations once handed to the caller), so for
// materialize-heavy plans the ceiling bounds cumulative
// materialization — a slight over-count of the true peak. The
// streaming drain refunds its run-ahead buffers as they are delivered,
// so a streamed scan's charge stays bounded regardless of result size.
//
// On a governed quota the same n is reserved from the global pool
// before Charge succeeds; the reservation may briefly wait for other
// queries to refund or finish, then fails with a *GovernorError when
// the process-wide budget stays exhausted.
func (q *Quota) Charge(n int64) error {
	if q == nil || n <= 0 {
		return nil
	}
	if used := q.used.Add(n); q.limit > 0 && used > q.limit {
		return &QuotaError{Limit: q.limit, Used: used}
	}
	if q.gov == nil {
		return nil
	}
	if err := q.gov.Reserve(q.ctx, n); err != nil {
		return err
	}
	q.mu.Lock()
	if q.closed {
		// The query already released everything (raced with teardown);
		// hand the reservation straight back rather than stranding it.
		q.mu.Unlock()
		q.gov.Release(n)
		return nil
	}
	q.govHeld += n
	q.mu.Unlock()
	return nil
}

// Refund returns n bytes to the quota: the counterpart of Charge for
// buffers that were delivered downstream and recycled mid-query. On a
// governed quota the bytes go back to the global pool immediately, so
// a streaming query's global footprint tracks its bounded run-ahead,
// not its total result size.
func (q *Quota) Refund(n int64) {
	if q == nil || n <= 0 {
		return
	}
	q.used.Add(-n)
	if q.gov == nil {
		return
	}
	q.mu.Lock()
	if q.closed || q.govHeld <= 0 {
		q.mu.Unlock()
		return
	}
	if n > q.govHeld {
		n = q.govHeld
	}
	q.govHeld -= n
	q.mu.Unlock()
	q.gov.Release(n)
}

// Close releases the query's remaining global reservation. Called
// exactly once when the query ends — normally, cancelled, or with a
// streaming client gone mid-result — after which the governor sees
// none of this query's bytes. Safe on nil and idempotent.
func (q *Quota) Close() {
	if q == nil || q.gov == nil {
		return
	}
	q.mu.Lock()
	held := q.govHeld
	q.govHeld = 0
	q.closed = true
	q.mu.Unlock()
	q.gov.Release(held)
}

// Used reports the bytes charged so far (0 on a nil quota).
func (q *Quota) Used() int64 {
	if q == nil {
		return 0
	}
	return q.used.Load()
}

// QuotaError reports that a query exceeded its memory ceiling
// (engine Config.MaxQueryBytes / sommelierd -max-query-bytes).
type QuotaError struct {
	Limit, Used int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("query memory ceiling exceeded: %d bytes materialized, limit %d", e.Used, e.Limit)
}
