package storage

import (
	"sync"
	"testing"
)

// TestPooledBuilderRoundTrip checks the core ownership cycle: a pooled
// builder's column checks out of the pool and PutColumn returns it,
// leaving the outstanding gauge where it started.
func TestPooledBuilderRoundTrip(t *testing.T) {
	before := Outstanding()
	for _, k := range []Kind{KindInt64, KindFloat64, KindBool, KindTime} {
		b := NewPooledBuilder(k, 16)
		for i := 0; i < 8; i++ {
			b.AppendFrom(sampleColumn(k, 8), i)
		}
		c := b.Finish()
		if c.Len() != 8 {
			t.Fatalf("%v: built %d rows, want 8", k, c.Len())
		}
		if Outstanding() != before+1 {
			t.Fatalf("%v: outstanding %d, want %d", k, Outstanding(), before+1)
		}
		PutColumn(c)
		if Outstanding() != before {
			t.Fatalf("%v: outstanding %d after put, want %d", k, Outstanding(), before)
		}
	}
}

func sampleColumn(k Kind, n int) Column {
	switch k {
	case KindInt64:
		return NewInt64Column(make([]int64, n))
	case KindFloat64:
		return NewFloat64Column(make([]float64, n))
	case KindBool:
		return NewBoolColumn(make([]bool, n))
	case KindTime:
		return NewTimeColumn(make([]int64, n))
	default:
		panic("sampleColumn")
	}
}

// TestPutBatchDuplicateColumn guards the SELECT a, a shape: a column
// referenced twice in one batch is recycled exactly once.
func TestPutBatchDuplicateColumn(t *testing.T) {
	b := NewPooledBuilder(KindInt64, 8)
	b.(*Int64Builder).Append(1)
	c := b.Finish()
	batch := NewPooledBatch(c, c)
	PutBatch(batch)
	RequireNoLeaks(t)
}

// TestViewWithSelOwnership checks the pooled selection view: attaching
// a selection to an unpooled batch borrows a pooled header, and the
// consumer's PutBatch (or a materializing append) returns it.
func TestViewWithSelOwnership(t *testing.T) {
	base := NewBatch(NewInt64Column([]int64{1, 2, 3, 4}))
	v := ViewWithSel(base, IdentitySel(4)[:2])
	if v.Len() != 2 {
		t.Fatalf("view len %d, want 2", v.Len())
	}
	out := NewRelation()
	out.Append(v) // materializes: gathers rows, recycles sel and header
	RequireNoLeaks(t)
	if out.Rows() != 2 {
		t.Fatalf("rows %d, want 2", out.Rows())
	}
	// The base batch is untouched and still owned by its creator.
	if base.Len() != 4 {
		t.Fatalf("base len %d, want 4", base.Len())
	}
}

// TestRelationReleaseMixed releases a relation holding a pooled batch
// next to a shared (unpooled) batch: only the pooled memory returns.
func TestRelationReleaseMixed(t *testing.T) {
	shared := NewBatch(NewInt64Column([]int64{9, 9}))
	pb := NewPooledBuilder(KindInt64, 4)
	pb.(*Int64Builder).Append(1)
	pb.(*Int64Builder).Append(2)
	pooledBatch := NewPooledBatch(pb.Finish())
	rel := NewRelation()
	rel.Append(shared)
	rel.Append(pooledBatch)
	rel.Release()
	RequireNoLeaks(t)
	if rel.Rows() != 0 {
		t.Fatalf("released relation reports %d rows", rel.Rows())
	}
	// The shared batch is untouched.
	if shared.Len() != 2 || Int64s(shared.Cols[0])[0] != 9 {
		t.Fatalf("shared batch mutated by release")
	}
}

// TestGatherPooledMatchesGather proves the pooled gather emits the same
// values as the plain gather for every column kind.
func TestGatherPooledMatchesGather(t *testing.T) {
	idx := []int32{3, 1, 3, 0}
	cols := []Column{
		NewInt64Column([]int64{10, 11, 12, 13}),
		NewTimeColumn([]int64{20, 21, 22, 23}),
		NewFloat64Column([]float64{0.5, 1.5, 2.5, 3.5}),
		NewBoolColumn([]bool{true, false, true, false}),
		NewStringColumn([]string{"a", "b", "a", "c"}),
	}
	for _, c := range cols {
		want := c.Gather(idx)
		got := GatherPooled(c, idx)
		for i := range idx {
			if ValueAt(got, i) != ValueAt(want, i) {
				t.Fatalf("%T: row %d = %v, want %v", c, i, ValueAt(got, i), ValueAt(want, i))
			}
		}
		PutColumn(got)
	}
	RequireNoLeaks(t)
}

// TestSetPoolingOff checks the differential toggle: with pooling off,
// producers hand out unpooled memory, puts are no-ops, and the
// outstanding gauge never moves.
func TestSetPoolingOff(t *testing.T) {
	SetPooling(false)
	defer SetPooling(true)
	before := Outstanding()
	b := NewPooledBuilder(KindFloat64, 8)
	b.(*Float64Builder).Append(1.5)
	c := b.Finish()
	batch := NewPooledBatch(c)
	if Outstanding() != before {
		t.Fatalf("outstanding moved with pooling off")
	}
	PutBatch(batch)
	if Outstanding() != before {
		t.Fatalf("put moved the gauge with pooling off")
	}
}

// TestPooledCoalescerMultiFlushPoolingOff pins the pooling-off
// fallback of NewPooledBatch: each flush must own its column slice, or
// a second flush overwrites the first batch's columns through the
// coalescer's reused scratch.
func TestPooledCoalescerMultiFlushPoolingOff(t *testing.T) {
	SetPooling(false)
	defer SetPooling(true)
	kinds := []Kind{KindInt64}
	c := NewPooledCoalescer(kinds)
	out := NewRelation()
	mkSel := func(v int64) *Batch {
		vals := make([]int64, BatchSize)
		for i := range vals {
			vals[i] = v
		}
		return NewBatch(NewInt64Column(vals)).WithSel(IdentitySel(BatchSize))
	}
	c.Add(out, mkSel(1)) // flush #1 (exactly full)
	c.Add(out, mkSel(2)) // flush #2
	c.Flush(out)
	if len(out.Batches()) != 2 {
		t.Fatalf("got %d batches, want 2", len(out.Batches()))
	}
	if got := Int64s(out.Batches()[0].Cols[0])[0]; got != 1 {
		t.Fatalf("batch 0 overwritten by later flush: got %d, want 1", got)
	}
	if got := Int64s(out.Batches()[1].Cols[0])[0]; got != 2 {
		t.Fatalf("batch 1 = %d, want 2", got)
	}
}

// TestPoolConcurrentOwnership hammers the pools from many goroutines
// under -race: every goroutine runs full build→batch→release cycles on
// shared pools; the gauge returns to its baseline.
func TestPoolConcurrentOwnership(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				bl := NewPooledBuilder(KindInt64, BatchSize)
				for r := 0; r < 64; r++ {
					bl.(*Int64Builder).Append(int64(r))
				}
				c := bl.Finish()
				g2 := GatherPooled(c, []int32{0, 5, 9})
				rel := NewRelation()
				rel.Append(NewPooledBatch(c))
				rel.Append(NewPooledBatch(g2))
				rel.Release()
			}
		}()
	}
	wg.Wait()
	RequireNoLeaks(t)
}

// TestZoneInheritance asserts the incremental zone-map protocol: a
// snapshot cloned for append inherits the parent's cached per-batch
// bounds, and only the appended tail batches are ever scanned.
func TestZoneInheritance(t *testing.T) {
	mk := func(lo int64) *Batch {
		vals := []int64{lo, lo + 1, lo + 2}
		return NewBatch(NewInt64Column(vals), NewFloat64Column(make([]float64, 3)))
	}
	parent := NewRelation()
	for i := int64(0); i < 3; i++ {
		parent.Append(mk(i * 10))
	}
	base := ZoneComputations()
	z := parent.Zone(2, 0)
	if !z.Ok || z.Min != 20 || z.Max != 22 {
		t.Fatalf("zone = %+v, want [20,22]", z)
	}
	if got := ZoneComputations() - base; got != 3 {
		t.Fatalf("computed %d batch bounds on first use, want 3", got)
	}

	child := parent.CloneForAppend(1)
	child.Append(mk(100))
	base = ZoneComputations()
	z = child.Zone(3, 0)
	if !z.Ok || z.Min != 100 || z.Max != 102 {
		t.Fatalf("tail zone = %+v, want [100,102]", z)
	}
	if got := ZoneComputations() - base; got != 1 {
		t.Fatalf("append recomputed %d batch bounds, want 1 (tail only)", got)
	}
	// The parent snapshot's cache is untouched and still valid.
	base = ZoneComputations()
	if z := parent.Zone(0, 0); !z.Ok || z.Min != 0 {
		t.Fatalf("parent zone = %+v", z)
	}
	if got := ZoneComputations() - base; got != 0 {
		t.Fatalf("parent recomputed %d bounds after child append, want 0", got)
	}
}
