//go:build !pooldebug

package storage

// In the default build, pool accounting is a single shared counter:
// one atomic add per checkout, nothing to look at but the total. Build
// with -tags pooldebug to record the acquisition stack of every live
// object instead.

// PoolDebug reports whether this binary records acquisition stacks;
// alloc-budget tests skip themselves when it is set.
const PoolDebug = false

func trackAcquire(any) { outstanding.Add(1) }

func trackRelease(any) { outstanding.Add(-1) }

// LeakStacks reports the acquisition stacks of live pooled objects;
// only the pooldebug build records them.
func LeakStacks() []string { return nil }
