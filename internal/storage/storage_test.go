package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInt64Column(t *testing.T) {
	c := NewInt64Column([]int64{1, 2, 3, 4, 5})
	if c.Kind() != KindInt64 {
		t.Fatalf("kind = %v", c.Kind())
	}
	if c.Len() != 5 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.MemSize() != 40 {
		t.Fatalf("mem = %d", c.MemSize())
	}
	s := c.Slice(1, 3).(*Int64Column)
	if s.Len() != 2 || s.Value(0) != 2 || s.Value(1) != 3 {
		t.Fatalf("slice = %+v", s)
	}
	g := c.Gather([]int32{4, 0, 2}).(*Int64Column)
	if g.Value(0) != 5 || g.Value(1) != 1 || g.Value(2) != 3 {
		t.Fatalf("gather = %+v", g)
	}
}

func TestTimeColumnKind(t *testing.T) {
	c := NewTimeColumn([]int64{10, 20})
	if c.Kind() != KindTime {
		t.Fatalf("kind = %v", c.Kind())
	}
	if Int64s(c)[1] != 20 {
		t.Fatal("Int64s on TimeColumn failed")
	}
}

func TestFloat64Column(t *testing.T) {
	c := NewFloat64Column([]float64{1.5, -2.5})
	if c.Kind() != KindFloat64 || c.Len() != 2 {
		t.Fatalf("bad column %v", c)
	}
	if got := c.Gather([]int32{1}).(*Float64Column).Value(0); got != -2.5 {
		t.Fatalf("gather = %v", got)
	}
}

func TestBoolColumn(t *testing.T) {
	c := NewBoolColumn([]bool{true, false, true})
	if c.MemSize() != 3 {
		t.Fatalf("mem = %d", c.MemSize())
	}
	if got := c.Slice(2, 3).(*BoolColumn).Value(0); !got {
		t.Fatal("slice lost value")
	}
}

func TestStringColumnDictionary(t *testing.T) {
	c := NewStringColumn([]string{"ISK", "FIAM", "ISK", "ISK", "FIAM"})
	if len(c.Dict()) != 2 {
		t.Fatalf("dict = %v", c.Dict())
	}
	if c.Value(0) != "ISK" || c.Value(1) != "FIAM" || c.Value(3) != "ISK" {
		t.Fatal("values scrambled")
	}
	if c.Code(0) != c.Code(2) {
		t.Fatal("equal strings got different codes")
	}
	if c.Lookup("FIAM") != c.Code(1) {
		t.Fatal("lookup mismatch")
	}
	if c.Lookup("absent") != -1 {
		t.Fatal("lookup of absent value should be -1")
	}
	g := c.Gather([]int32{1, 1, 0}).(*StringColumn)
	if g.Value(0) != "FIAM" || g.Value(2) != "ISK" {
		t.Fatal("gather scrambled strings")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindInt64:   "BIGINT",
		KindFloat64: "DOUBLE",
		KindBool:    "BOOLEAN",
		KindString:  "VARCHAR",
		KindTime:    "TIMESTAMP",
		KindInvalid: "INVALID",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestBuilders(t *testing.T) {
	kinds := []Kind{KindInt64, KindFloat64, KindBool, KindString, KindTime}
	for _, k := range kinds {
		b := NewBuilder(k, 4)
		if b.Kind() != k {
			t.Fatalf("builder kind = %v, want %v", b.Kind(), k)
		}
		switch k {
		case KindInt64, KindTime:
			b.AppendAny(int64(7))
		case KindFloat64:
			b.AppendAny(3.14)
		case KindBool:
			b.AppendAny(true)
		case KindString:
			b.AppendAny("x")
		}
		if b.Len() != 1 {
			t.Fatalf("len after append = %d", b.Len())
		}
		c := b.Finish()
		if c.Kind() != k || c.Len() != 1 {
			t.Fatalf("finished column %v/%d", c.Kind(), c.Len())
		}
	}
}

func TestAppendFromRoundTrip(t *testing.T) {
	src := NewStringColumn([]string{"a", "b", "c"})
	b := NewStringBuilder(3)
	for i := 0; i < src.Len(); i++ {
		b.AppendFrom(src, i)
	}
	got := b.FinishString()
	for i := 0; i < 3; i++ {
		if got.Value(i) != src.Value(i) {
			t.Fatalf("row %d: %q != %q", i, got.Value(i), src.Value(i))
		}
	}
}

func TestBatchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged batch did not panic")
		}
	}()
	NewBatch(NewInt64Column([]int64{1}), NewInt64Column([]int64{1, 2}))
}

func TestBatchSliceGather(t *testing.T) {
	b := NewBatch(
		NewInt64Column([]int64{1, 2, 3, 4}),
		NewStringColumn([]string{"a", "b", "c", "d"}),
	)
	if b.Len() != 4 || b.Width() != 2 {
		t.Fatalf("len=%d width=%d", b.Len(), b.Width())
	}
	s := b.Slice(1, 3)
	if s.Len() != 2 || ValueAt(s.Cols[1], 0) != "b" {
		t.Fatalf("slice = %v", s)
	}
	g := b.Gather([]int32{3, 0})
	if ValueAt(g.Cols[0], 0) != int64(4) || ValueAt(g.Cols[1], 1) != "a" {
		t.Fatalf("gather wrong")
	}
}

func TestRelationFlatten(t *testing.T) {
	r := NewRelation()
	r.Append(NewBatch(NewInt64Column([]int64{1, 2}), NewStringColumn([]string{"x", "y"})))
	r.Append(NewBatch(NewInt64Column([]int64{3}), NewStringColumn([]string{"z"})))
	r.Append(&Batch{}) // empty: ignored
	if r.Rows() != 3 {
		t.Fatalf("rows = %d", r.Rows())
	}
	f := r.Flatten()
	if f.Len() != 3 {
		t.Fatalf("flatten len = %d", f.Len())
	}
	want := []string{"x", "y", "z"}
	for i, w := range want {
		if ValueAt(f.Cols[1], i) != w {
			t.Fatalf("row %d = %v, want %v", i, ValueAt(f.Cols[1], i), w)
		}
	}
	// Flatten of single-batch relation returns the batch itself.
	r2 := NewRelation()
	b := NewBatch(NewInt64Column([]int64{9}))
	r2.Append(b)
	if r2.Flatten() != b {
		t.Fatal("single-batch flatten should be identity")
	}
	// Flatten of empty relation.
	if NewRelation().Flatten().Len() != 0 {
		t.Fatal("empty flatten should be empty")
	}
}

// Property: Slice-then-Gather equals Gather on adjusted indexes for
// random int64 columns.
func TestQuickSliceGatherConsistency(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) < 2 {
			return true
		}
		c := NewInt64Column(vals)
		lo, hi := 1, len(vals)
		s := c.Slice(lo, hi)
		idx := make([]int32, s.Len())
		for i := range idx {
			idx[i] = int32(i)
		}
		g1 := s.Gather(idx).(*Int64Column)
		for i := 0; i < g1.Len(); i++ {
			if g1.Value(i) != vals[lo+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dictionary encoding round-trips arbitrary string slices.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		c := NewStringColumn(vals)
		if c.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if c.Value(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Relation.Flatten preserves row order for random batch splits.
func TestQuickFlattenOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63()
		}
		r := NewRelation()
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(n-lo)
			r.Append(NewBatch(NewInt64Column(vals[lo:hi])))
			lo = hi
		}
		f := r.Flatten()
		got := make([]int64, 0, n)
		if f.Len() > 0 {
			got = append(got, Int64s(f.Cols[0])...)
		}
		if !reflect.DeepEqual(got, vals) && !(len(got) == 0 && n == 0) {
			t.Fatalf("trial %d: flatten scrambled rows", trial)
		}
	}
}
