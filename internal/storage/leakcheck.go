package storage

// TB is the subset of *testing.T the leak check needs; a local
// interface keeps the testing package out of non-test builds.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// RequireNoLeaks fails t when pooled objects are still checked out of
// the pool. It is the standard epilogue of any test that exercises
// pooled execution; under `go test -tags pooldebug` the failure also
// names the acquisition stack of every leaked object.
func RequireNoLeaks(t TB) {
	t.Helper()
	n := Outstanding()
	if n == 0 {
		return
	}
	t.Errorf("storage: %d pooled objects still outstanding", n)
	for _, st := range LeakStacks() {
		t.Errorf("leaked %s", st)
	}
}
