//go:build pooldebug

package storage

// The pooldebug build answers the question the bare counter cannot:
// WHO forgot to release. Every checkout records the goroutine stack it
// happened on, keyed by the object's identity; releasing deletes the
// record, and LeakStacks dumps whatever is left.

import (
	"fmt"
	"runtime"
	"sync"
)

// PoolDebug reports whether this binary records acquisition stacks;
// alloc-budget tests skip themselves when it is set.
const PoolDebug = true

var (
	trackMu    sync.Mutex
	liveStacks = map[any]string{}
)

func trackAcquire(obj any) {
	outstanding.Add(1)
	buf := make([]byte, 16<<10)
	n := runtime.Stack(buf, false)
	trackMu.Lock()
	liveStacks[obj] = string(buf[:n])
	trackMu.Unlock()
}

func trackRelease(obj any) {
	outstanding.Add(-1)
	trackMu.Lock()
	delete(liveStacks, obj)
	trackMu.Unlock()
}

// LeakStacks returns, for every pooled object still checked out, the
// stack it was acquired on.
func LeakStacks() []string {
	trackMu.Lock()
	defer trackMu.Unlock()
	out := make([]string, 0, len(liveStacks))
	for obj, st := range liveStacks {
		out = append(out, fmt.Sprintf("%T acquired at:\n%s", obj, st))
	}
	return out
}
