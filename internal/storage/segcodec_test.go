package storage

import (
	"errors"
	"math"
	"testing"
)

// segTestRel builds a relation shaped like a table chunk: several
// batches of (time, int64, float64, bool, string) columns, with the
// time column an arithmetic progression (the delta-of-delta sweet
// spot) and the others exercising every codec path.
func segTestRel(t *testing.T, batches, rows int) *Relation {
	t.Helper()
	rel := NewRelation()
	period := int64(20_000_000) // 20ms in ns
	base := int64(1262304000_000_000_000)
	for b := 0; b < batches; b++ {
		times := make([]int64, rows)
		ids := make([]int64, rows)
		vals := make([]float64, rows)
		flags := make([]bool, rows)
		names := make([]string, rows)
		for i := 0; i < rows; i++ {
			times[i] = base + int64(b*rows+i)*period
			ids[i] = int64(b)
			vals[i] = float64(i)*1.5 - float64(b)
			flags[i] = i%3 == 0
			names[i] = []string{"FIAM", "ISK", "AQU"}[i%3]
		}
		// Sprinkle irregularities so the zero-run encoder has to break
		// and resume runs.
		if rows > 4 {
			times[rows/2] += 7
			ids[rows/3] = -42
			vals[rows/4] = math.Inf(1)
			vals[rows/4+1] = math.NaN()
		}
		rel.Append(NewBatch(
			NewTimeColumn(times),
			NewInt64Column(ids),
			NewFloat64Column(vals),
			NewBoolColumn(flags),
			NewStringColumn(names),
		))
	}
	return rel
}

// requireSameRelation asserts a decoded relation is bitwise identical
// to the original: batch boundaries, widths, and every value.
func requireSameRelation(t *testing.T, want, got *Relation) {
	t.Helper()
	wb, gb := want.Batches(), got.Batches()
	if len(wb) != len(gb) {
		t.Fatalf("batches = %d, want %d", len(gb), len(wb))
	}
	for bi := range wb {
		if wb[bi].Len() != gb[bi].Len() || wb[bi].Width() != gb[bi].Width() {
			t.Fatalf("batch %d shape = (%d,%d), want (%d,%d)",
				bi, gb[bi].Len(), gb[bi].Width(), wb[bi].Len(), wb[bi].Width())
		}
		for ci := 0; ci < wb[bi].Width(); ci++ {
			wc, gc := wb[bi].Cols[ci], gb[bi].Cols[ci]
			if wc.Kind() != gc.Kind() {
				t.Fatalf("batch %d col %d kind = %v, want %v", bi, ci, gc.Kind(), wc.Kind())
			}
			for i := 0; i < wb[bi].Len(); i++ {
				wv, gv := ValueAt(wc, i), ValueAt(gc, i)
				// NaN != NaN; compare bit patterns for floats.
				if wf, ok := wv.(float64); ok {
					if math.Float64bits(wf) != math.Float64bits(gv.(float64)) {
						t.Fatalf("batch %d col %d row %d = %v, want %v", bi, ci, i, gv, wv)
					}
					continue
				}
				if wv != gv {
					t.Fatalf("batch %d col %d row %d = %v, want %v", bi, ci, i, gv, wv)
				}
			}
		}
	}
}

func TestSegCodecRoundtrip(t *testing.T) {
	defer RequireNoLeaks(t)
	rel := segTestRel(t, 3, 100)
	body, err := EncodeRelation(nil, rel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRelation(body)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, rel, got)
	got.Release()
}

func TestSegCodecRoundtripEdgeValues(t *testing.T) {
	defer RequireNoLeaks(t)
	// Extremes, sign flips and wraparound-inducing jumps: the
	// delta-of-delta subtractions overflow int64, which must cancel
	// exactly in the decoder's cumulative sums.
	rel := NewRelation()
	rel.Append(NewBatch(NewInt64Column([]int64{
		0, math.MaxInt64, math.MinInt64, -1, 1, math.MaxInt64, math.MaxInt64, 0,
	})))
	rel.Append(NewBatch(NewInt64Column([]int64{7}))) // single row
	body, err := EncodeRelation(nil, rel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRelation(body)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, rel, got)
	got.Release()
}

func TestSegCodecConstantColumnCompresses(t *testing.T) {
	defer RequireNoLeaks(t)
	// A constant-period time column is the disk tier's common case; the
	// zero-run encoding must collapse it to a few bytes, not one byte
	// per row.
	n := 10_000
	times := make([]int64, n)
	for i := range times {
		times[i] = int64(i) * 20_000_000
	}
	rel := NewRelation()
	rel.Append(NewBatch(NewTimeColumn(times)))
	body, err := EncodeRelation(nil, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) > 64 {
		t.Fatalf("constant-period column encoded to %d bytes, want < 64", len(body))
	}
	got, err := DecodeRelation(body)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, rel, got)
	got.Release()
}

func TestSegCodecEmptyRelation(t *testing.T) {
	defer RequireNoLeaks(t)
	rel := NewRelation()
	body, err := EncodeRelation(nil, rel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRelation(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 0 {
		t.Fatalf("rows = %d", got.Rows())
	}
	got.Release()
}

func TestSegCodecZoneSeeding(t *testing.T) {
	defer RequireNoLeaks(t)
	rel := segTestRel(t, 2, 50)
	// Force the zones to exist so the encoder embeds them.
	for bi := range rel.Batches() {
		rel.Zone(bi, 0)
	}
	body, err := EncodeRelation(nil, rel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRelation(body)
	if err != nil {
		t.Fatal(err)
	}
	base := ZoneComputations()
	for bi := range got.Batches() {
		wz, gz := rel.Zone(bi, 0), got.Zone(bi, 0)
		if gz != wz {
			t.Fatalf("batch %d zone = %+v, want %+v", bi, gz, wz)
		}
	}
	if n := ZoneComputations() - base; n != 0 {
		t.Fatalf("reading seeded zones recomputed %d zones, want 0", n)
	}
	got.Release()
}

func TestSegCodecCorruptInputs(t *testing.T) {
	defer RequireNoLeaks(t)
	rel := segTestRel(t, 2, 40)
	body, err := EncodeRelation(nil, rel)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"garbage":     {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"truncated":   body[:len(body)/2],
		"trailing":    append(append([]byte{}, body...), 0xAA),
		"huge-counts": {0xff, 0xff, 0xff, 0xff, 0xff, 0x07},
	}
	for name, data := range cases {
		if got, err := DecodeRelation(data); err == nil {
			got.Release()
			t.Fatalf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrSegCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrSegCorrupt", name, err)
		}
	}
	// Flip every byte in turn somewhere in the first stretch: whatever
	// the damage, decode must either fail cleanly or return a relation
	// — never panic, never leak.
	for i := 0; i < len(body) && i < 200; i++ {
		mut := append([]byte{}, body...)
		mut[i] ^= 0x5A
		if got, err := DecodeRelation(mut); err == nil {
			got.Release()
		}
	}
}
