package storage

// Coalescer accumulates the surviving rows of selection-carrying
// batches into full-width contiguous output batches. Draining a
// filtering scan would otherwise materialize one small batch per input
// batch — one Gather, one column set and one batch header each; the
// coalescer instead appends the selected rows into shared builders and
// emits batches of at least BatchSize rows, so downstream consumers
// (and a later Flatten) see a fraction of the batch count for the same
// row copies.
//
// Only fixed-width column sets are eligible: appending into a string
// builder would re-encode the dictionary per row, which can cost more
// than the gather it replaces.
type Coalescer struct {
	kinds    []Kind
	eligible bool
	builders []Builder
	// pooled draws builder backing from the batch-memory pool and emits
	// pooled batches: the output relation owns them and Release recycles
	// them (the steady-state drain path of hot queries).
	pooled bool
	// armed marks that the builders hold backing capacity for the
	// current fill; Flush disarms instead of re-allocating, so the
	// final flush of a stream never arms capacity it will not use.
	armed bool
	rows  int
	// colScratch is the reused column slice Flush hands to the batch
	// constructor (which copies it into the emitted header).
	colScratch []Column
}

// NewCoalescer prepares a coalescer for the given output schema.
func NewCoalescer(kinds []Kind) *Coalescer {
	c := &Coalescer{kinds: kinds, eligible: len(kinds) > 0}
	for _, k := range kinds {
		switch k {
		case KindInt64, KindFloat64, KindBool, KindTime:
		default:
			c.eligible = false
		}
	}
	return c
}

// NewPooledCoalescer is NewCoalescer with pooled output batches.
func NewPooledCoalescer(kinds []Kind) *Coalescer {
	c := NewCoalescer(kinds)
	c.pooled = true
	return c
}

// Eligible reports whether b should be routed through the coalescer: a
// deferred-selection batch over a fixed-width schema. Contiguous
// batches pass through the drain without copying, so coalescing them
// would only add work.
func (c *Coalescer) Eligible(b *Batch) bool {
	return c.eligible && b.Sel() != nil
}

// Add folds b's selected rows into the builders, recycling the
// selection vector. The fill is flushed to out before it would
// overflow BatchSize (so the builders never re-grow) and again when it
// reaches BatchSize exactly.
func (c *Coalescer) Add(out *Relation, b *Batch) {
	base, sel := b.DetachSel()
	if c.rows > 0 && c.rows+len(sel) > BatchSize {
		c.Flush(out)
	}
	if c.builders == nil {
		c.builders = make([]Builder, len(c.kinds))
		for i, k := range c.kinds {
			if c.pooled {
				c.builders[i] = NewPooledBuilder(k, BatchSize)
			} else {
				c.builders[i] = NewBuilder(k, BatchSize)
			}
		}
	} else if !c.armed {
		for _, bl := range c.builders {
			bl.Reset(BatchSize)
		}
	}
	c.armed = true
	for ci, col := range base.Cols {
		c.builders[ci].AppendSel(col, sel)
	}
	c.rows += len(sel)
	PutSel(sel)
	// The selected rows are copied out: a pooled base is dead here.
	PutBatch(base)
	if c.rows >= BatchSize {
		c.Flush(out)
	}
}

// Flush emits the accumulated rows, if any, as one batch.
func (c *Coalescer) Flush(out *Relation) {
	if c.rows == 0 {
		return
	}
	if c.colScratch == nil {
		c.colScratch = make([]Column, len(c.builders))
	}
	cols := c.colScratch
	for i, b := range c.builders {
		// Finish surrenders the backing slice to the column; the next
		// Add re-arms capacity lazily, so a stream's final flush does
		// not allocate backing it will never fill.
		cols[i] = b.Finish()
	}
	if c.pooled {
		// NewPooledBatch copies cols into the pooled header, so the
		// scratch slice is free to reuse.
		out.Append(NewPooledBatch(cols...))
	} else {
		out.Append(NewBatch(append([]Column(nil), cols...)...))
	}
	c.armed = false
	c.rows = 0
}
