// Package storage provides the columnar storage primitives the engine is
// built on: typed columns, record batches and column builders.
//
// The design mirrors a bulk-processing column store: data moves between
// operators as batches of column slices, and all per-value operations are
// implemented as tight loops over typed Go slices.
package storage

import "fmt"

// Kind identifies the physical type of a column.
type Kind uint8

// The supported physical column types. Time is stored as int64
// nanoseconds since the Unix epoch but carries its own Kind so that
// formatting and schema checks can distinguish it from plain integers.
const (
	KindInvalid Kind = iota
	KindInt64
	KindFloat64
	KindBool
	KindString
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindBool:
		return "BOOLEAN"
	case KindString:
		return "VARCHAR"
	case KindTime:
		return "TIMESTAMP"
	default:
		return "INVALID"
	}
}

// Column is an immutable, typed vector of values. Columns are created by
// builders (or the convenience constructors) and then treated as
// read-only by the execution engine; Slice and Gather return new columns
// that may share underlying storage.
type Column interface {
	// Kind reports the physical type of the column.
	Kind() Kind
	// Len reports the number of values.
	Len() int
	// MemSize estimates the heap footprint of the column in bytes.
	MemSize() int64
	// Slice returns the half-open range [lo, hi) as a column that
	// shares storage with the receiver.
	Slice(lo, hi int) Column
	// Gather returns a new column holding the values at the given
	// row indexes, in order.
	Gather(idx []int32) Column
}

// Int64s extracts the backing slice of an int64 or timestamp column.
// It panics if the column has a different physical representation.
func Int64s(c Column) []int64 {
	switch c := c.(type) {
	case *Int64Column:
		return c.vals
	case *TimeColumn:
		return c.vals
	default:
		panic(fmt.Sprintf("storage: Int64s on %T", c))
	}
}

// Float64s extracts the backing slice of a float64 column.
func Float64s(c Column) []float64 {
	return c.(*Float64Column).vals
}

// Bools extracts the backing slice of a bool column.
func Bools(c Column) []bool {
	return c.(*BoolColumn).vals
}

// Int64Column is a column of 64-bit integers. pooled marks columns
// whose backing array is owned by the batch-memory pool (see pool.go);
// it is metadata for PutColumn, invisible to readers.
type Int64Column struct {
	vals   []int64
	pooled bool
}

// NewInt64Column wraps vals (not copied) as a column.
func NewInt64Column(vals []int64) *Int64Column { return &Int64Column{vals: vals} }

// Kind implements Column.
func (c *Int64Column) Kind() Kind { return KindInt64 }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.vals) }

// MemSize implements Column.
func (c *Int64Column) MemSize() int64 { return int64(len(c.vals)) * 8 }

// Slice implements Column.
func (c *Int64Column) Slice(lo, hi int) Column { return &Int64Column{vals: c.vals[lo:hi]} }

// Gather implements Column.
func (c *Int64Column) Gather(idx []int32) Column {
	out := make([]int64, len(idx))
	for i, j := range idx {
		out[i] = c.vals[j]
	}
	return &Int64Column{vals: out}
}

// Value returns the i-th value.
func (c *Int64Column) Value(i int) int64 { return c.vals[i] }

// TimeColumn is a column of timestamps, stored as int64 nanoseconds
// since the Unix epoch.
type TimeColumn struct {
	vals   []int64
	pooled bool
}

// NewTimeColumn wraps vals (nanoseconds since epoch, not copied).
func NewTimeColumn(vals []int64) *TimeColumn { return &TimeColumn{vals: vals} }

// Kind implements Column.
func (c *TimeColumn) Kind() Kind { return KindTime }

// Len implements Column.
func (c *TimeColumn) Len() int { return len(c.vals) }

// MemSize implements Column.
func (c *TimeColumn) MemSize() int64 { return int64(len(c.vals)) * 8 }

// Slice implements Column.
func (c *TimeColumn) Slice(lo, hi int) Column { return &TimeColumn{vals: c.vals[lo:hi]} }

// Gather implements Column.
func (c *TimeColumn) Gather(idx []int32) Column {
	out := make([]int64, len(idx))
	for i, j := range idx {
		out[i] = c.vals[j]
	}
	return &TimeColumn{vals: out}
}

// Value returns the i-th value in nanoseconds since epoch.
func (c *TimeColumn) Value(i int) int64 { return c.vals[i] }

// Float64Column is a column of 64-bit floats.
type Float64Column struct {
	vals   []float64
	pooled bool
}

// NewFloat64Column wraps vals (not copied) as a column.
func NewFloat64Column(vals []float64) *Float64Column { return &Float64Column{vals: vals} }

// Kind implements Column.
func (c *Float64Column) Kind() Kind { return KindFloat64 }

// Len implements Column.
func (c *Float64Column) Len() int { return len(c.vals) }

// MemSize implements Column.
func (c *Float64Column) MemSize() int64 { return int64(len(c.vals)) * 8 }

// Slice implements Column.
func (c *Float64Column) Slice(lo, hi int) Column { return &Float64Column{vals: c.vals[lo:hi]} }

// Gather implements Column.
func (c *Float64Column) Gather(idx []int32) Column {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = c.vals[j]
	}
	return &Float64Column{vals: out}
}

// Value returns the i-th value.
func (c *Float64Column) Value(i int) float64 { return c.vals[i] }

// BoolColumn is a column of booleans.
type BoolColumn struct {
	vals   []bool
	pooled bool
}

// NewBoolColumn wraps vals (not copied) as a column.
func NewBoolColumn(vals []bool) *BoolColumn { return &BoolColumn{vals: vals} }

// Kind implements Column.
func (c *BoolColumn) Kind() Kind { return KindBool }

// Len implements Column.
func (c *BoolColumn) Len() int { return len(c.vals) }

// MemSize implements Column.
func (c *BoolColumn) MemSize() int64 { return int64(len(c.vals)) }

// Slice implements Column.
func (c *BoolColumn) Slice(lo, hi int) Column { return &BoolColumn{vals: c.vals[lo:hi]} }

// Gather implements Column.
func (c *BoolColumn) Gather(idx []int32) Column {
	out := make([]bool, len(idx))
	for i, j := range idx {
		out[i] = c.vals[j]
	}
	return &BoolColumn{vals: out}
}

// Value returns the i-th value.
func (c *BoolColumn) Value(i int) bool { return c.vals[i] }

// StringColumn is a dictionary-encoded column of strings. Low-cardinality
// attributes (station and channel codes, data-quality flags, ...) dominate
// the metadata tables of chunked repositories, so dictionary encoding is
// the storage default for strings.
type StringColumn struct {
	dict   []string
	codes  []int32
	pooled bool
}

// NewStringColumn dictionary-encodes vals into a column.
func NewStringColumn(vals []string) *StringColumn {
	b := NewStringBuilder(len(vals))
	for _, v := range vals {
		b.Append(v)
	}
	return b.FinishString()
}

// Kind implements Column.
func (c *StringColumn) Kind() Kind { return KindString }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.codes) }

// MemSize implements Column.
func (c *StringColumn) MemSize() int64 {
	n := int64(len(c.codes)) * 4
	for _, s := range c.dict {
		n += int64(len(s)) + 16
	}
	return n
}

// Slice implements Column.
func (c *StringColumn) Slice(lo, hi int) Column {
	return &StringColumn{dict: c.dict, codes: c.codes[lo:hi]}
}

// Gather implements Column.
func (c *StringColumn) Gather(idx []int32) Column {
	out := make([]int32, len(idx))
	for i, j := range idx {
		out[i] = c.codes[j]
	}
	return &StringColumn{dict: c.dict, codes: out}
}

// Value returns the i-th string.
func (c *StringColumn) Value(i int) string { return c.dict[c.codes[i]] }

// Code returns the dictionary code of the i-th string. Codes are only
// comparable between columns sharing a dictionary.
func (c *StringColumn) Code(i int) int32 { return c.codes[i] }

// Dict returns the dictionary. Callers must not modify it.
func (c *StringColumn) Dict() []string { return c.dict }

// Lookup returns the dictionary code for s, or -1 if s does not occur
// in the column. This turns string equality predicates into int32
// comparisons.
func (c *StringColumn) Lookup(s string) int32 {
	for i, d := range c.dict {
		if d == s {
			return int32(i)
		}
	}
	return -1
}

// ValueAt returns the i-th value of any column as an interface value.
// It is intended for result rendering and tests, not for inner loops.
func ValueAt(c Column, i int) any {
	switch c := c.(type) {
	case *Int64Column:
		return c.Value(i)
	case *TimeColumn:
		return c.Value(i)
	case *Float64Column:
		return c.Value(i)
	case *BoolColumn:
		return c.Value(i)
	case *StringColumn:
		return c.Value(i)
	default:
		panic(fmt.Sprintf("storage: ValueAt on %T", c))
	}
}
