package storage

// The segment codec is the on-disk column encoding of the disk cache
// tier (internal/cache.DiskTier): one encoded "block body" per chunk,
// batch-organized like the in-memory representation so a decode
// reconstitutes the exact batch boundaries the recycler evicted.
//
// Layout of one block body (all integers varint unless noted):
//
//	uvarint  nBatches
//	per batch:
//	  uvarint  nRows
//	  uvarint  nCols
//	  per column:
//	    byte    kind            (segInt64..segTime, decoupled from Kind)
//	    byte    zone.Ok         (1 followed by varint min, varint max)
//	    values  kind-specific   (see below)
//
// Value encodings reuse the SOMW wire primitives (internal/server):
// int64 and time values are zigzag varints of per-column second
// differences (delta-of-delta), with runs of zero second differences
// collapsed to a 0x00 token followed by a uvarint run length. Sample
// timestamps advance by a near-constant period, so a whole column is
// typically one leading delta plus one run token, and the decoder
// reconstitutes it with an arithmetic fill loop instead of a per-value
// varint parse — this is what makes a disk promote decode cheaper than
// a miniSEED re-ingest. float64 is 8-byte little-endian IEEE-754,
// bool is one byte, strings are a dictionary (uvarint count, then
// uvarint length + bytes each) followed by uvarint codes. Framing,
// CRCs and the footer index are the disk tier's concern — the codec
// sees only body bytes.
//
// The per-column zone bounds are written at encode time (from the
// relation's lazily built zone cache) and seeded back into the decoded
// relation, so a RelScan over a promoted chunk skips disjoint batches
// without a single ColumnZone recomputation.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Segment-codec kind bytes. Decoupled from Kind so the storage enum can
// be reordered without breaking segment files on disk.
const (
	segInt64 byte = iota
	segFloat64
	segBool
	segString
	segTime
)

func toSegKind(k Kind) (byte, error) {
	switch k {
	case KindInt64:
		return segInt64, nil
	case KindFloat64:
		return segFloat64, nil
	case KindBool:
		return segBool, nil
	case KindString:
		return segString, nil
	case KindTime:
		return segTime, nil
	}
	return 0, fmt.Errorf("storage: unencodable column kind %v", k)
}

// ErrSegCorrupt wraps every decode failure, so callers can treat any
// malformed body as a corrupt block without inspecting causes.
var ErrSegCorrupt = errors.New("storage: corrupt segment block")

// EncodeRelation appends the segment encoding of rel to buf and
// returns the extended buffer. Relations carrying deferred selections
// cannot be encoded (table-resident chunks never do); the error is the
// caller's cue to skip the spill, not a corruption.
func EncodeRelation(buf []byte, rel *Relation) ([]byte, error) {
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}
	putVarint := func(v int64) {
		n := binary.PutVarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}

	batches := rel.Batches()
	putUvarint(uint64(len(batches)))
	for bi, b := range batches {
		if b.Sel() != nil {
			return nil, fmt.Errorf("storage: cannot encode batch with deferred selection")
		}
		putUvarint(uint64(b.Len()))
		putUvarint(uint64(len(b.Cols)))
		for ci, c := range b.Cols {
			sk, err := toSegKind(c.Kind())
			if err != nil {
				return nil, err
			}
			buf = append(buf, sk)
			z := rel.Zone(bi, ci)
			if z.Ok {
				buf = append(buf, 1)
				putVarint(z.Min)
				putVarint(z.Max)
			} else {
				buf = append(buf, 0)
			}
			switch sk {
			case segInt64, segTime:
				// Delta-of-delta zigzag with zero-run collapsing: wraparound
				// on the subtractions is harmless — the decoder's cumulative
				// sums wrap identically.
				prev, prevDelta := int64(0), int64(0)
				zeroRun := uint64(0)
				flushRun := func() {
					if zeroRun > 0 {
						buf = append(buf, 0)
						putUvarint(zeroRun)
						zeroRun = 0
					}
				}
				for _, v := range Int64s(c) {
					d := v - prev
					if d == prevDelta {
						zeroRun++
					} else {
						flushRun()
						putVarint(d - prevDelta)
					}
					prev, prevDelta = v, d
				}
				flushRun()
			case segFloat64:
				for _, v := range Float64s(c) {
					var fb [8]byte
					binary.LittleEndian.PutUint64(fb[:], math.Float64bits(v))
					buf = append(buf, fb[:]...)
				}
			case segBool:
				for _, v := range Bools(c) {
					if v {
						buf = append(buf, 1)
					} else {
						buf = append(buf, 0)
					}
				}
			case segString:
				sc := c.(*StringColumn)
				dict := sc.Dict()
				putUvarint(uint64(len(dict)))
				for _, s := range dict {
					putUvarint(uint64(len(s)))
					buf = append(buf, s...)
				}
				for i, n := 0, sc.Len(); i < n; i++ {
					putUvarint(uint64(sc.Code(i)))
				}
			}
		}
	}
	return buf, nil
}

// segReader is a bounds-checked cursor over one block body.
type segReader struct {
	data []byte
	off  int
}

func (r *segReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, ErrSegCorrupt
	}
	r.off += n
	return v, nil
}

func (r *segReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, ErrSegCorrupt
	}
	r.off += n
	return v, nil
}

func (r *segReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, ErrSegCorrupt
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *segReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, ErrSegCorrupt
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Pooled-or-not allocation helpers: the decoder lands values directly
// in pooled backing when pooling is on (the tentpole's "spilled blocks
// land directly in pooled batches") and falls back to plain
// allocations when it is off, mirroring NewPooledBatch.

func decInt64s(n int) []int64 {
	if pooling.Load() {
		return int64Slices.get(n)[:n]
	}
	return make([]int64, n)
}

func decFloat64s(n int) []float64 {
	if pooling.Load() {
		return float64Slices.get(n)[:n]
	}
	return make([]float64, n)
}

func decBools(n int) []bool {
	if pooling.Load() {
		return boolSlices.get(n)[:n]
	}
	return make([]bool, n)
}

func decIntCol(vals []int64, asTime bool) Column {
	if pooling.Load() {
		return pooledInt64Col(vals, asTime)
	}
	if asTime {
		return NewTimeColumn(vals)
	}
	return NewInt64Column(vals)
}

func decFloatCol(vals []float64) Column {
	if pooling.Load() {
		return pooledFloat64Col(vals)
	}
	return NewFloat64Column(vals)
}

func decBoolCol(vals []bool) Column {
	if pooling.Load() {
		return pooledBoolCol(vals)
	}
	return NewBoolColumn(vals)
}

func decStringCol(dict []string, codes []int32) Column {
	if pooling.Load() {
		return pooledStringCol(dict, codes)
	}
	return &StringColumn{dict: dict, codes: codes}
}

// maxDecodeRows caps the per-batch row count a body may claim, so a
// corrupt length prefix cannot drive a giant allocation before the
// bounds checks catch it.
const maxDecodeRows = 1 << 24

// DecodeRelation decodes one block body produced by EncodeRelation.
// The returned relation is built of pooled batches owned by the caller
// (release with Relation.Release, or Disown before installing it
// somewhere long-lived); its zone cache is pre-seeded from the encoded
// bounds. Any malformed input returns an error wrapping ErrSegCorrupt
// with nothing left checked out of the pools.
func DecodeRelation(data []byte) (*Relation, error) {
	r := &segReader{data: data}
	nBatches, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nBatches > maxDecodeRows {
		return nil, ErrSegCorrupt
	}
	rel := NewRelationWithCap(int(nBatches))
	zones := make([][]Zone, 0, nBatches)
	fail := func(cols []Column) (*Relation, error) {
		for _, c := range cols {
			PutColumn(c)
		}
		rel.Release()
		return nil, ErrSegCorrupt
	}
	for bi := uint64(0); bi < nBatches; bi++ {
		nRows, err := r.uvarint()
		if err != nil || nRows > maxDecodeRows {
			return fail(nil)
		}
		nCols, err := r.uvarint()
		if err != nil || nCols > 1<<16 {
			return fail(nil)
		}
		cols := make([]Column, 0, nCols)
		zs := make([]Zone, 0, nCols)
		for ci := uint64(0); ci < nCols; ci++ {
			c, z, err := decodeColumn(r, int(nRows))
			if err != nil {
				return fail(cols)
			}
			cols = append(cols, c)
			zs = append(zs, z)
		}
		b := NewPooledBatch(cols...)
		if b.Len() == 0 {
			// Relation.Append ignores empty batches; recycle the header
			// so nothing leaks, and skip the zone entry to keep the seeded
			// cache aligned with the batches actually appended.
			PutBatch(b)
			continue
		}
		rel.Append(b)
		zones = append(zones, zs)
	}
	if r.off != len(data) {
		return fail(nil)
	}
	rel.zones.Store(&zones)
	return rel, nil
}

func decodeColumn(r *segReader, nRows int) (Column, Zone, error) {
	sk, err := r.byte()
	if err != nil {
		return nil, Zone{}, err
	}
	var z Zone
	zok, err := r.byte()
	if err != nil {
		return nil, Zone{}, err
	}
	if zok == 1 {
		if z.Min, err = r.varint(); err != nil {
			return nil, Zone{}, err
		}
		if z.Max, err = r.varint(); err != nil {
			return nil, Zone{}, err
		}
		z.Ok = true
	} else if zok != 0 {
		return nil, Zone{}, ErrSegCorrupt
	}
	switch sk {
	case segInt64, segTime:
		vals := decInt64s(nRows)
		// Hand-rolled cursor: the generic r.varint() slice-and-call per
		// value would dominate a block decode. A 0x00 token (zigzag
		// zero) is a run of zero second differences — the column
		// continues its current arithmetic progression — so the common
		// case is one run-length read and a tight fill loop instead of
		// a per-value varint parse.
		data, off := r.data, r.off
		corrupt := func() (Column, Zone, error) {
			int64Slices.put(vals)
			return nil, Zone{}, ErrSegCorrupt
		}
		prev, prevDelta := int64(0), int64(0)
		for i := 0; i < len(vals); {
			if off >= len(data) {
				return corrupt()
			}
			if b := data[off]; b == 0 {
				off++
				runLen, n := binary.Uvarint(data[off:])
				if n <= 0 || runLen == 0 || runLen > uint64(len(vals)-i) {
					return corrupt()
				}
				off += n
				// Fill by multiplication rather than a running sum: the
				// iterations are independent, so the loop is not stuck
				// behind a serial add chain.
				base := prev
				for k := int64(1); k <= int64(runLen); k++ {
					vals[i] = base + prevDelta*k
					i++
				}
				prev = base + prevDelta*int64(runLen)
				continue
			} else if b < 0x80 {
				off++
				u := uint64(b)
				prevDelta += int64(u>>1) ^ -int64(u&1)
			} else {
				d2, n := binary.Varint(data[off:])
				if n <= 0 {
					return corrupt()
				}
				off += n
				prevDelta += d2
			}
			prev += prevDelta
			vals[i] = prev
			i++
		}
		r.off = off
		return decIntCol(vals, sk == segTime), z, nil
	case segFloat64:
		raw, err := r.bytes(nRows * 8)
		if err != nil {
			return nil, Zone{}, err
		}
		vals := decFloat64s(nRows)
		for i := range vals {
			// Advancing the slice instead of indexing raw[i*8:] lets the
			// compiler drop the per-iteration multiply and bounds check.
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw))
			raw = raw[8:]
		}
		return decFloatCol(vals), z, nil
	case segBool:
		vals := decBools(nRows)
		for i := range vals {
			b, err := r.byte()
			if err != nil || b > 1 {
				boolSlices.put(vals)
				return nil, Zone{}, ErrSegCorrupt
			}
			vals[i] = b == 1
		}
		return decBoolCol(vals), z, nil
	case segString:
		nDict, err := r.uvarint()
		if err != nil || nDict > maxDecodeRows {
			return nil, Zone{}, ErrSegCorrupt
		}
		dict := make([]string, nDict)
		for i := range dict {
			sl, err := r.uvarint()
			if err != nil || sl > 1<<20 {
				return nil, Zone{}, ErrSegCorrupt
			}
			sb, err := r.bytes(int(sl))
			if err != nil {
				return nil, Zone{}, err
			}
			dict[i] = string(sb)
		}
		var codes []int32
		if pooling.Load() {
			codes = GetSel(nRows)[:nRows]
		} else {
			codes = make([]int32, nRows)
		}
		for i := range codes {
			cv, err := r.uvarint()
			if err != nil || cv >= nDict {
				PutSel(codes)
				return nil, Zone{}, ErrSegCorrupt
			}
			codes[i] = int32(cv)
		}
		return decStringCol(dict, codes), z, nil
	}
	return nil, Zone{}, ErrSegCorrupt
}
