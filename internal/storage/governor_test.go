package storage

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGovernorReserveRelease(t *testing.T) {
	g := NewGovernor(1000, time.Millisecond)
	if err := g.Reserve(context.Background(), 600); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(context.Background(), 400); err != nil {
		t.Fatal(err)
	}
	if got := g.InUse(); got != 1000 {
		t.Fatalf("InUse = %d, want 1000", got)
	}
	if got := g.HighWater(); got != 1000 {
		t.Fatalf("HighWater = %d, want 1000", got)
	}
	g.Release(1000)
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}
	if got := g.HighWater(); got != 1000 {
		t.Fatalf("HighWater after release = %d, want 1000", got)
	}
}

func TestGovernorShedsWhenFull(t *testing.T) {
	g := NewGovernor(1000, time.Millisecond)
	if err := g.Reserve(context.Background(), 900); err != nil {
		t.Fatal(err)
	}
	err := g.Reserve(context.Background(), 200)
	var ge *GovernorError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v, want *GovernorError", err)
	}
	if ge.Limit != 1000 || ge.Wanted != 200 {
		t.Fatalf("GovernorError = %+v", ge)
	}
	if g.Sheds() != 1 {
		t.Fatalf("Sheds = %d, want 1", g.Sheds())
	}
	// Capacity freed before the wait expires: the reservation goes
	// through instead of shedding.
	done := make(chan error, 1)
	g2 := NewGovernor(1000, time.Second)
	if err := g2.Reserve(context.Background(), 900); err != nil {
		t.Fatal(err)
	}
	go func() { done <- g2.Reserve(context.Background(), 200) }()
	time.Sleep(10 * time.Millisecond)
	g2.Release(900)
	if err := <-done; err != nil {
		t.Fatalf("waited reservation failed: %v", err)
	}
	if g2.Waits() != 1 {
		t.Fatalf("Waits = %d, want 1", g2.Waits())
	}
}

func TestGovernorOversizedShedsImmediately(t *testing.T) {
	g := NewGovernor(100, time.Hour) // the wait must not matter
	t0 := time.Now()
	err := g.Reserve(context.Background(), 200)
	var ge *GovernorError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v, want *GovernorError", err)
	}
	if time.Since(t0) > time.Second {
		t.Fatal("oversized reservation waited instead of shedding immediately")
	}
}

func TestGovernorHonorsContext(t *testing.T) {
	g := NewGovernor(100, time.Hour)
	if err := g.Reserve(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := g.Reserve(ctx, 50); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
}

func TestGovernorExhausted(t *testing.T) {
	g := NewGovernor(1000, time.Millisecond)
	if g.Exhausted() {
		t.Fatal("empty governor reports exhausted")
	}
	if err := g.Reserve(context.Background(), 900); err != nil {
		t.Fatal(err)
	}
	if !g.Exhausted() {
		t.Fatal("governor at 90% not reported exhausted")
	}
	g.Release(900)
	if g.Exhausted() {
		t.Fatal("drained governor still exhausted")
	}
}

func TestGovernorNil(t *testing.T) {
	var g *Governor
	if err := g.Reserve(context.Background(), 1<<40); err != nil {
		t.Fatal(err)
	}
	g.Release(1 << 40)
	if g.InUse() != 0 || g.Limit() != 0 || g.Exhausted() {
		t.Fatal("nil governor not inert")
	}
	if NewGovernor(0, 0) != nil {
		t.Fatal("NewGovernor(0) != nil")
	}
}

func TestGovernedQuotaMirrorsCharges(t *testing.T) {
	g := NewGovernor(1000, time.Millisecond)
	q := NewGovernedQuota(context.Background(), 0, g)
	if q == nil {
		t.Fatal("governed quota with no per-query limit must not be nil")
	}
	if err := q.Charge(400); err != nil {
		t.Fatal(err)
	}
	if got := g.InUse(); got != 400 {
		t.Fatalf("InUse after charge = %d, want 400", got)
	}
	q.Refund(150)
	if got := g.InUse(); got != 250 {
		t.Fatalf("InUse after refund = %d, want 250", got)
	}
	q.Close()
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after close = %d, want 0", got)
	}
	q.Close() // idempotent
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after double close = %d", got)
	}
}

func TestGovernedQuotaPerQueryLimitFirst(t *testing.T) {
	g := NewGovernor(1<<20, time.Millisecond)
	q := NewGovernedQuota(context.Background(), 100, g)
	if err := q.Charge(80); err != nil {
		t.Fatal(err)
	}
	err := q.Charge(80)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuotaError", err)
	}
	// The failed charge must not have reserved globally.
	if got := g.InUse(); got != 80 {
		t.Fatalf("InUse = %d, want 80", got)
	}
	q.Close()
}

func TestGovernedQuotaShedsOnGlobalExhaustion(t *testing.T) {
	g := NewGovernor(500, time.Millisecond)
	a := NewGovernedQuota(context.Background(), 0, g)
	b := NewGovernedQuota(context.Background(), 0, g)
	if err := a.Charge(400); err != nil {
		t.Fatal(err)
	}
	err := b.Charge(400)
	var ge *GovernorError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v, want *GovernorError", err)
	}
	a.Close()
	if err := b.Charge(400); err != nil {
		t.Fatalf("charge after peer close: %v", err)
	}
	b.Close()
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0", got)
	}
}

func TestGovernedQuotaConcurrent(t *testing.T) {
	g := NewGovernor(1<<30, 10*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := NewGovernedQuota(context.Background(), 0, g)
			for j := 0; j < 1000; j++ {
				if err := q.Charge(1024); err != nil {
					t.Error(err)
					break
				}
				if j%2 == 0 {
					q.Refund(512)
				}
			}
			q.Close()
		}()
	}
	wg.Wait()
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after all queries closed = %d, want 0", got)
	}
}

func TestNewGovernedQuotaNilWhenUngoverned(t *testing.T) {
	if q := NewGovernedQuota(context.Background(), 0, nil); q != nil {
		t.Fatal("no limit + no governor should be a nil quota")
	}
	if q := NewGovernedQuota(context.Background(), 100, nil); q == nil {
		t.Fatal("per-query limit without governor must still enforce")
	}
}
