package storage

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// DefaultGovernorWait bounds how long a reservation blocks for
// capacity before the governor sheds it. Short on purpose: a query
// that cannot get memory within this window is better rejected (the
// client retries against a less loaded server) than parked while it
// pins chunks and a concurrency slot.
const DefaultGovernorWait = 100 * time.Millisecond

// Governor is the process-wide memory pool that every per-query
// Quota reserves from. Per-query ceilings do not compose — sixteen
// concurrent queries each under their own limit can still OOM the
// process together — so the governor puts one bound on the sum:
// reservations over the limit first wait (briefly, bounded by
// maxWait and the caller's context) for running queries to refund
// run-ahead buffers or finish, then shed with a *GovernorError.
// Degrading to queueing/shedding instead of the OOM killer is the
// whole point; the error is typed so the server can answer 429 with
// a Retry-After rather than a 5xx.
//
// A nil *Governor means "ungoverned" and every method is a no-op.
type Governor struct {
	limit   int64
	maxWait time.Duration

	mu        sync.Mutex
	inUse     int64
	highWater int64
	sheds     int64
	waits     int64
	wake      chan struct{} // closed+replaced on Release while waiters exist
	waiters   int
}

// NewGovernor returns a governor bounding total reserved bytes to
// limit, or nil (ungoverned) when limit <= 0. maxWait bounds how long
// a reservation may block for capacity (<= 0 = DefaultGovernorWait).
func NewGovernor(limit int64, maxWait time.Duration) *Governor {
	if limit <= 0 {
		return nil
	}
	if maxWait <= 0 {
		maxWait = DefaultGovernorWait
	}
	return &Governor{limit: limit, maxWait: maxWait}
}

// Reserve claims n bytes of the global budget, waiting up to maxWait
// (and no longer than ctx allows) for capacity before giving up with
// a *GovernorError. A request larger than the whole budget sheds
// immediately — no amount of waiting can satisfy it.
func (g *Governor) Reserve(ctx context.Context, n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	var deadline <-chan time.Time
	var timer *time.Timer
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	g.mu.Lock()
	for {
		if g.inUse+n <= g.limit {
			g.inUse += n
			if g.inUse > g.highWater {
				g.highWater = g.inUse
			}
			g.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return nil
		}
		if n > g.limit {
			// Never satisfiable: shed without waiting.
			return g.shedLocked(n)
		}
		if deadline == nil {
			timer = time.NewTimer(g.maxWait)
			deadline = timer.C
			g.waits++
		}
		if g.wake == nil {
			g.wake = make(chan struct{})
		}
		wake := g.wake
		g.waiters++
		g.mu.Unlock()
		select {
		case <-wake:
		case <-deadline:
			g.mu.Lock()
			g.waiters--
			return g.shedLocked(n)
		case <-done:
			g.mu.Lock()
			g.waiters--
			g.mu.Unlock()
			timer.Stop()
			return ctx.Err()
		}
		g.mu.Lock()
		g.waiters--
	}
}

// shedLocked records a rejection and builds the error. Called with
// g.mu held; releases it.
func (g *Governor) shedLocked(n int64) error {
	g.sheds++
	err := &GovernorError{Limit: g.limit, InUse: g.inUse, Wanted: n}
	g.mu.Unlock()
	return err
}

// Release returns n reserved bytes to the pool and wakes any
// reservations waiting for capacity.
func (g *Governor) Release(n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.mu.Lock()
	g.inUse -= n
	if g.inUse < 0 {
		// Refund/release accounting is mirrored from Quota charges, so
		// this cannot go negative unless a caller double-releases;
		// clamp rather than poison every later reservation.
		g.inUse = 0
	}
	if g.waiters > 0 && g.wake != nil {
		close(g.wake)
		g.wake = nil
	}
	g.mu.Unlock()
}

// InUse reports the bytes currently reserved (0 on nil).
func (g *Governor) InUse() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// HighWater reports the peak concurrent reservation (0 on nil).
func (g *Governor) HighWater() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.highWater
}

// Sheds reports how many reservations were rejected (0 on nil).
func (g *Governor) Sheds() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sheds
}

// Waits reports how many reservations had to wait for capacity.
func (g *Governor) Waits() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waits
}

// Limit reports the configured budget (0 on nil).
func (g *Governor) Limit() int64 {
	if g == nil {
		return 0
	}
	return g.limit
}

// Exhausted reports whether the pool is effectively full — the signal
// /readyz uses to tell load balancers to back off before sheds start.
// "Effectively" is seven eighths: a pool one batch short of its limit
// sheds most incoming reservations just as surely as a full one.
func (g *Governor) Exhausted() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse >= g.limit-g.limit/8
}

// GovernorError reports that the process-wide memory budget was
// exhausted and a query's reservation was shed. It is deliberately
// not Degradable: running out of global memory is backpressure, not
// data loss, and the right response is retry-later, not a partial
// answer.
type GovernorError struct {
	Limit, InUse, Wanted int64
}

func (e *GovernorError) Error() string {
	return fmt.Sprintf("global memory governor exhausted: %d bytes in use of %d, reservation of %d shed", e.InUse, e.Limit, e.Wanted)
}
