package storage

import (
	"math/rand"
	"testing"
)

func benchInts(n int) []int64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(1000)
	}
	return out
}

func BenchmarkGatherInt64(b *testing.B) {
	c := NewInt64Column(benchInts(BatchSize))
	idx := make([]int32, BatchSize/2)
	for i := range idx {
		idx[i] = int32(i * 2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Gather(idx)
	}
}

func BenchmarkStringDictionaryBuild(b *testing.B) {
	stations := []string{"FIAM", "ISK", "AQU", "CERA"}
	vals := make([]string, BatchSize)
	for i := range vals {
		vals[i] = stations[i%len(stations)]
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewStringColumn(vals)
	}
}

func BenchmarkRelationFlatten(b *testing.B) {
	r := NewRelation()
	for i := 0; i < 16; i++ {
		r.Append(NewBatch(NewInt64Column(benchInts(BatchSize))))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Flatten()
	}
}
