module sommelier

go 1.24
